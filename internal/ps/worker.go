package ps

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"cynthia/internal/data"
	"cynthia/internal/nn"
)

// Default worker network timeouts. The I/O timeout bounds every frame
// read and write, so it must comfortably exceed the longest legitimate
// stall — a BSP barrier held open by the slowest worker.
const (
	DefaultDialTimeout = 10 * time.Second
	DefaultIOTimeout   = 2 * time.Minute
)

// WorkerConfig configures one training worker.
type WorkerConfig struct {
	// ID is the worker index in [0, cluster workers).
	ID int
	// Servers are the PS shard addresses, in shard order.
	Servers []string
	// Model is the worker's local replica — any nn.Model (MLP, ConvNet);
	// its parameter layout defines the flat vector the shards partition.
	Model nn.Model
	// Train is this worker's data shard.
	Train *data.Set
	// Batch is the per-worker mini-batch size.
	Batch int
	// Iterations is how many local iterations to run.
	Iterations int
	// Seed drives batch shuffling.
	Seed int64
	// DialTimeout bounds the TCP connect to each shard, so a blackholed
	// address fails the worker instead of hanging it. 0 selects
	// DefaultDialTimeout; negative disables the timeout.
	DialTimeout time.Duration
	// IOTimeout bounds each frame write and read on a shard connection
	// (a server that accepts but never replies trips it). 0 selects
	// DefaultIOTimeout; negative disables deadlines.
	IOTimeout time.Duration
}

// WorkerStats summarizes one worker's run.
type WorkerStats struct {
	ID         int
	Iterations int
	// Losses holds the local mini-batch loss per iteration.
	Losses []float64
	// Staleness holds, per iteration, how many parameter updates by
	// other workers landed on shard 0 between this worker's consecutive
	// synchronizations — the paper's ASP parameter staleness. BSP rounds
	// advance the version exactly once between a worker's syncs, so BSP
	// staleness is identically 0.
	Staleness []int
	// BytesSent and BytesReceived count wire traffic.
	BytesSent     int64
	BytesReceived int64

	lastVersion uint32
	haveVersion bool
}

// MeanStaleness averages the per-iteration staleness.
func (s *WorkerStats) MeanStaleness() float64 {
	if len(s.Staleness) == 0 {
		return 0
	}
	total := 0
	for _, v := range s.Staleness {
		total += v
	}
	return float64(total) / float64(len(s.Staleness))
}

// shardConn is one live connection to a PS shard. Every frame written or
// read through it carries a fresh deadline of timeout (when positive).
type shardConn struct {
	conn    net.Conn
	lo, hi  int
	timeout time.Duration
}

func (sc *shardConn) write(typ byte, payload []byte) error {
	if sc.timeout > 0 {
		if err := sc.conn.SetWriteDeadline(time.Now().Add(sc.timeout)); err != nil {
			return err
		}
	}
	return writeFrame(sc.conn, typ, payload)
}

func (sc *shardConn) read() (byte, []byte, error) {
	if sc.timeout > 0 {
		if err := sc.conn.SetReadDeadline(time.Now().Add(sc.timeout)); err != nil {
			return 0, nil, err
		}
	}
	return readFrame(sc.conn)
}

// RunWorker connects to every PS shard, pulls the initial parameters, and
// runs the training loop: compute gradients on a local mini-batch, push
// them, and continue with the parameters the shards hand back. With BSP
// servers the sync blocks on the round barrier, giving true bulk
// synchrony; with ASP servers it returns immediately.
func RunWorker(cfg WorkerConfig) (*WorkerStats, error) {
	if cfg.Model == nil || cfg.Train == nil {
		return nil, fmt.Errorf("ps: worker %d missing model or data", cfg.ID)
	}
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("ps: worker %d has no servers", cfg.ID)
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("ps: worker %d iterations %d < 1", cfg.ID, cfg.Iterations)
	}
	numParams := cfg.Model.NumParams()
	stats := &WorkerStats{ID: cfg.ID}
	dialTimeout := cfg.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = DefaultDialTimeout
	}
	ioTimeout := cfg.IOTimeout
	if ioTimeout == 0 {
		ioTimeout = DefaultIOTimeout
	}

	shards := make([]*shardConn, len(cfg.Servers))
	defer func() {
		for _, sc := range shards {
			if sc != nil {
				_ = sc.write(msgBye, nil)
				sc.conn.Close()
			}
		}
	}()
	for k, addr := range cfg.Servers {
		var conn net.Conn
		var err error
		if dialTimeout > 0 {
			conn, err = net.DialTimeout("tcp", addr, dialTimeout)
		} else {
			conn, err = net.Dial("tcp", addr)
		}
		if err != nil {
			return nil, fmt.Errorf("ps: worker %d dialing shard %d: %w", cfg.ID, k, err)
		}
		lo, hi := ShardRange(numParams, k, len(cfg.Servers))
		sc := &shardConn{conn: conn, lo: lo, hi: hi, timeout: ioTimeout}
		shards[k] = sc
		hello := encodeHello(cfg.ID, hi-lo)
		if err := sc.write(msgHello, hello); err != nil {
			return nil, fmt.Errorf("ps: worker %d hello to shard %d: %w", cfg.ID, k, err)
		}
		stats.BytesSent += int64(len(hello) + 5)
	}

	flat := make([]float64, numParams)
	grad := make([]float64, numParams)

	// Initial pull: zero-length gradient fetches current parameters.
	if err := syncAll(shards, 0, nil, flat, stats); err != nil {
		return nil, fmt.Errorf("ps: worker %d initial pull: %w", cfg.ID, err)
	}
	if err := cfg.Model.SetParams(flat); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	batcher, err := data.NewBatcher(cfg.Train, cfg.Batch, rng)
	if err != nil {
		return nil, fmt.Errorf("ps: worker %d: %w", cfg.ID, err)
	}

	for it := 0; it < cfg.Iterations; it++ {
		x, labels := batcher.Next()
		lossVal, err := cfg.Model.LossAndGradFlat(x, labels, grad)
		if err != nil {
			return nil, fmt.Errorf("ps: worker %d iteration %d: %w", cfg.ID, it, err)
		}
		stats.Losses = append(stats.Losses, lossVal)
		if err := syncAll(shards, uint32(it+1), grad, flat, stats); err != nil {
			return nil, fmt.Errorf("ps: worker %d sync %d: %w", cfg.ID, it, err)
		}
		if err := cfg.Model.SetParams(flat); err != nil {
			return nil, err
		}
		stats.Iterations++
	}
	return stats, nil
}

// syncAll pushes each shard's slice of grad (or a pure fetch when grad is
// nil) and reassembles the returned parameters into flat. Pushes go out to
// every shard before any reply is read, so a BSP barrier on one shard
// cannot deadlock the others.
func syncAll(shards []*shardConn, step uint32, grad, flat []float64, stats *WorkerStats) error {
	for _, sc := range shards {
		var payload []byte
		if grad == nil {
			payload = encodeFloats(step, nil)
		} else {
			payload = encodeFloats(step, grad[sc.lo:sc.hi])
		}
		if err := sc.write(msgSync, payload); err != nil {
			return err
		}
		stats.BytesSent += int64(len(payload) + 5)
	}
	for k, sc := range shards {
		typ, payload, err := sc.read()
		if err != nil {
			return err
		}
		stats.BytesReceived += int64(len(payload) + 5)
		switch typ {
		case msgParams:
			version, xs, err := decodeFloats(payload)
			if err != nil {
				return err
			}
			if k == 0 {
				// Staleness on shard 0: updates by other workers since
				// this worker's previous synchronization. The initial
				// parameter fetch only seeds the baseline version.
				if grad != nil && stats.haveVersion && version > stats.lastVersion {
					stats.Staleness = append(stats.Staleness, int(version-stats.lastVersion)-1)
				}
				stats.lastVersion = version
				stats.haveVersion = true
			}
			if len(xs) != sc.hi-sc.lo {
				return fmt.Errorf("ps: shard returned %d params, want %d", len(xs), sc.hi-sc.lo)
			}
			copy(flat[sc.lo:sc.hi], xs)
		case msgError:
			return fmt.Errorf("ps: server error: %s", payload)
		default:
			return fmt.Errorf("ps: unexpected reply type %d", typ)
		}
	}
	return nil
}
