package ps

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// waitUntil polls cond until it holds, failing the test after 5s. Tests
// use it instead of fixed sleeps so they are deterministic under load.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// silentServer accepts connections and reads everything thrown at it but
// never replies — the failure mode of a wedged or half-dead PS process,
// which only an I/O deadline can surface.
func silentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(io.Discard, c)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestWorkerTimesOutOnSilentServer(t *testing.T) {
	replica := newReplica(t)
	addr := silentServer(t)
	errc := runWorkerAsync(t, WorkerConfig{
		ID: 0, Servers: []string{addr}, Model: replica,
		Train: dataset(t, 30), Batch: 5, Iterations: 5, Seed: 1,
		IOTimeout: 100 * time.Millisecond,
	})
	err := waitErr(t, errc, 5*time.Second)
	if err == nil {
		t.Fatal("worker succeeded against a server that never replies")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error is not a network timeout: %v", err)
	}
}
