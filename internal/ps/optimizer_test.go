package ps

import (
	"cynthia/internal/nn"
	"math"
	"math/rand"
	"testing"
	"time"

	"cynthia/internal/data"
	"cynthia/internal/model"
)

func TestNewOptimizer(t *testing.T) {
	for _, name := range []string{"", "sgd", "momentum", "adam"} {
		opt, err := NewOptimizer(name, 0.1)
		if err != nil {
			t.Errorf("NewOptimizer(%q): %v", name, err)
			continue
		}
		if name != "" && opt.Name() != name {
			t.Errorf("Name() = %q, want %q", opt.Name(), name)
		}
	}
	if _, err := NewOptimizer("lamb", 0.1); err == nil {
		t.Error("unknown optimizer accepted")
	}
	if _, err := NewOptimizer("sgd", 0); err == nil {
		t.Error("zero lr accepted")
	}
}

func TestSGDApply(t *testing.T) {
	params := []float64{1, 2}
	(&SGD{LR: 0.5}).Apply(params, []float64{2, -2})
	if params[0] != 0 || params[1] != 3 {
		t.Errorf("params = %v", params)
	}
}

func TestMomentumAccumulates(t *testing.T) {
	m := &Momentum{LR: 1, Beta: 0.5}
	params := []float64{0}
	m.Apply(params, []float64{1}) // v=1, w=-1
	if params[0] != -1 {
		t.Fatalf("step1 = %v", params[0])
	}
	m.Apply(params, []float64{1}) // v=1.5, w=-2.5
	if params[0] != -2.5 {
		t.Fatalf("step2 = %v", params[0])
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// With bias correction, the first Adam step has magnitude ~lr
	// regardless of gradient scale.
	for _, g := range []float64{1e-3, 1, 1e3} {
		a := &Adam{LR: 0.1}
		params := []float64{0}
		a.Apply(params, []float64{g})
		if math.Abs(math.Abs(params[0])-0.1) > 1e-3 {
			t.Errorf("grad %v: first step = %v, want magnitude ~0.1", g, params[0])
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = (w-3)^2 with gradient 2(w-3).
	a := &Adam{LR: 0.2}
	w := []float64{-5.0}
	for i := 0; i < 400; i++ {
		a.Apply(w, []float64{2 * (w[0] - 3)})
	}
	if math.Abs(w[0]-3) > 0.05 {
		t.Errorf("w = %v, want ~3", w[0])
	}
}

func TestLocalJobWithAdam(t *testing.T) {
	set, err := data.Synthetic(rand.New(rand.NewSource(42)), 300, 12, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLocalJob(JobConfig{
		Sizes:      []int{12, 16, 3},
		Sync:       model.BSP,
		Workers:    2,
		Servers:    2,
		Dataset:    set,
		Batch:      20,
		Iterations: 80,
		LR:         0.1, // ignored when Optimizer is set
		Optimizer:  "adam",
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanFinalLoss >= res.MeanInitialLoss*0.5 {
		t.Errorf("adam loss %.3f -> %.3f", res.MeanInitialLoss, res.MeanFinalLoss)
	}
	if res.TrainAccuracy < 0.85 {
		t.Errorf("adam accuracy = %v", res.TrainAccuracy)
	}
}

func TestSSPBoundBlocksFastWorker(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Init:         []float64{0},
		Sync:         model.ASP,
		Workers:      2,
		LR:           0.1,
		MaxStaleness: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Worker 0 races ahead: steps 1 and 2 pass (staleness vs worker 1 at
	// 0 is within the bound), step 3 must block.
	for step := uint32(1); step <= 2; step++ {
		if _, _, err := srv.sync(0, step, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	released := make(chan error, 1)
	go func() {
		_, _, err := srv.sync(0, 3, []float64{1})
		released <- err
	}()
	waitUntil(t, "third sync to block", func() bool { return srv.Stats().Pushes == 3 })
	select {
	case err := <-released:
		t.Fatalf("step 3 not blocked (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	// Worker 1 advancing to step 1 releases worker 0 (min clock 1 + bound
	// 2 >= 3).
	if _, _, err := srv.sync(1, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("released with error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fast worker never released")
	}
}

func TestSSPCloseReleasesBlockedWorker(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Init:         []float64{0},
		Sync:         model.ASP,
		Workers:      2,
		LR:           0.1,
		MaxStaleness: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.sync(0, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	released := make(chan error, 1)
	go func() {
		_, _, err := srv.sync(0, 2, []float64{1})
		released <- err
	}()
	// Pushes is counted before the staleness wait, so two pushes mean the
	// goroutine is in (or entering) the blocked region.
	waitUntil(t, "second sync to block", func() bool { return srv.Stats().Pushes == 2 })
	srv.Close()
	select {
	case err := <-released:
		if err == nil {
			t.Error("blocked worker released without error after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not release blocked worker")
	}
}

func TestSSPBoundedJobTrains(t *testing.T) {
	set, err := data.Synthetic(rand.New(rand.NewSource(42)), 300, 12, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLocalJob(JobConfig{
		Sizes:        []int{12, 16, 3},
		Sync:         model.ASP,
		Workers:      3,
		Servers:      1,
		Dataset:      set,
		Batch:        16,
		Iterations:   60,
		LR:           0.05,
		MaxStaleness: 2,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanFinalLoss >= res.MeanInitialLoss*0.8 {
		t.Errorf("SSP loss %.3f -> %.3f", res.MeanInitialLoss, res.MeanFinalLoss)
	}
	// The bound holds in the observed staleness (allowing the off-by-one
	// of measuring across shard-0 versions).
	for _, ws := range res.WorkerStats {
		for _, st := range ws.Staleness {
			if st > 3*2+1 {
				t.Errorf("worker %d staleness %d with bound 2", ws.ID, st)
			}
		}
	}
}

func TestNegativeStalenessRejected(t *testing.T) {
	if _, err := NewServer(ServerConfig{Init: []float64{1}, Workers: 1, LR: 0.1, MaxStaleness: -1}); err == nil {
		t.Error("negative staleness accepted")
	}
}

func TestLocalJobTrainsConvNet(t *testing.T) {
	// Real distributed training of a real CNN over TCP: the cifar10-DNN
	// regime of the paper, end to end.
	const h, w, c = 8, 8, 1
	set, err := data.Synthetic(rand.New(rand.NewSource(21)), 256, h*w*c, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(seed int64) (nn.Model, error) {
		cn, err := nn.NewConvNet(h, w, c, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		if err := cn.AddConv(6, 3, 1); err != nil {
			return nil, err
		}
		if err := cn.AddReLU(); err != nil {
			return nil, err
		}
		if err := cn.AddMaxPool(2, 2); err != nil {
			return nil, err
		}
		if err := cn.AddDense(4); err != nil {
			return nil, err
		}
		return cn, nil
	}
	res, err := RunLocalJob(JobConfig{
		ModelFactory: factory,
		Sync:         model.BSP,
		Workers:      2,
		Servers:      2,
		Dataset:      set,
		Batch:        16,
		Iterations:   60,
		LR:           0.1,
		Seed:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanFinalLoss >= res.MeanInitialLoss*0.5 {
		t.Errorf("conv loss %.3f -> %.3f", res.MeanInitialLoss, res.MeanFinalLoss)
	}
	if res.TrainAccuracy < 0.85 {
		t.Errorf("conv accuracy = %v", res.TrainAccuracy)
	}
}
