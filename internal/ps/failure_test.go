package ps

// Failure-injection tests: the framework must fail loudly and promptly —
// not hang — when servers die mid-training, when configurations disagree,
// or when the wire carries garbage.

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"cynthia/internal/model"
	"cynthia/internal/nn"
)

func newReplica(t *testing.T) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP([]int{12, 8, 3}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// startServer launches one full-vector shard and returns it plus its
// address.
func startServer(t *testing.T, sync model.SyncMode, workers int, numParams int) (*Server, string) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Init:    make([]float64, numParams),
		Sync:    sync,
		Workers: workers,
		LR:      0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

// runWorkerAsync runs a worker in a goroutine and returns its error
// channel.
func runWorkerAsync(t *testing.T, cfg WorkerConfig) <-chan error {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		_, err := RunWorker(cfg)
		errc <- err
	}()
	return errc
}

func waitErr(t *testing.T, errc <-chan error, within time.Duration) error {
	t.Helper()
	select {
	case err := <-errc:
		return err
	case <-time.After(within):
		t.Fatal("worker did not finish in time (hang)")
		return nil
	}
}

func TestWorkerFailsFastWhenServerClosesMidRun(t *testing.T) {
	replica := newReplica(t)
	srv, addr := startServer(t, model.BSP, 2, replica.NumParams())
	// Only one of the two expected workers connects, so the BSP barrier
	// can never complete; closing the server must release the worker
	// with an error instead of deadlocking it.
	shard, err := dataset(t, 60).Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	errc := runWorkerAsync(t, WorkerConfig{
		ID: 0, Servers: []string{addr}, Model: replica,
		Train: shard, Batch: 5, Iterations: 50, Seed: 1,
	})
	// The server counts the push before blocking on the barrier, so a
	// non-zero push count means the worker is in (or entering) the wait.
	waitUntil(t, "worker to reach the barrier", func() bool { return srv.Stats().Pushes >= 1 })
	srv.Close()
	if err := waitErr(t, errc, 5*time.Second); err == nil {
		t.Error("worker succeeded despite server shutdown")
	}
}

func TestWorkerRejectsShardLengthMismatch(t *testing.T) {
	replica := newReplica(t)
	// Server holds half the parameters but the worker connects as if it
	// were the only shard.
	srv, err := NewServer(ServerConfig{
		Init:    make([]float64, replica.NumParams()/2),
		Sync:    model.ASP,
		Workers: 1,
		LR:      0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = RunWorker(WorkerConfig{
		ID: 0, Servers: []string{addr}, Model: replica,
		Train: dataset(t, 30), Batch: 5, Iterations: 5, Seed: 1,
	})
	if err == nil {
		t.Fatal("shard length mismatch accepted")
	}
}

func TestWorkerRejectsOutOfRangeID(t *testing.T) {
	replica := newReplica(t)
	_, addr := startServer(t, model.ASP, 2, replica.NumParams())
	_, err := RunWorker(WorkerConfig{
		ID: 7, Servers: []string{addr}, Model: replica,
		Train: dataset(t, 30), Batch: 5, Iterations: 5, Seed: 1,
	})
	if err == nil {
		t.Fatal("out-of-range worker id accepted")
	}
}

func TestWorkerFailsOnUnreachableServer(t *testing.T) {
	replica := newReplica(t)
	// Reserve a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = RunWorker(WorkerConfig{
		ID: 0, Servers: []string{addr}, Model: replica,
		Train: dataset(t, 30), Batch: 5, Iterations: 5, Seed: 1,
	})
	if err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestServerSurvivesGarbageClient(t *testing.T) {
	replica := newReplica(t)
	srv, addr := startServer(t, model.ASP, 1, replica.NumParams())
	// A client that speaks garbage must not crash or wedge the server.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A well-behaved worker still trains afterwards.
	stats, err := RunWorker(WorkerConfig{
		ID: 0, Servers: []string{addr}, Model: replica,
		Train: dataset(t, 30), Batch: 5, Iterations: 5, Seed: 1,
	})
	if err != nil {
		t.Fatalf("worker after garbage client: %v", err)
	}
	if stats.Iterations != 5 {
		t.Errorf("iterations = %d", stats.Iterations)
	}
	if srv.Stats().Pushes != 5 {
		t.Errorf("pushes = %d", srv.Stats().Pushes)
	}
}

func TestServerRejectsSyncBeforeHello(t *testing.T) {
	replica := newReplica(t)
	_, addr := startServer(t, model.ASP, 1, replica.NumParams())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, msgSync, encodeFloats(0, nil)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError {
		t.Errorf("reply type = %d (%q), want error", typ, payload)
	}
}

func TestDoubleCloseIsSafe(t *testing.T) {
	replica := newReplica(t)
	srv, _ := startServer(t, model.BSP, 1, replica.NumParams())
	srv.Close()
	srv.Close() // must not panic
}
