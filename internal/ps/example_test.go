package ps_test

import (
	"fmt"
	"math/rand"

	"cynthia/internal/data"
	"cynthia/internal/model"
	"cynthia/internal/ps"
)

// Train a real MLP with BSP across an in-process TCP cluster of 2 PS
// shards and 3 workers.
func ExampleRunLocalJob() {
	dataset, err := data.Synthetic(rand.New(rand.NewSource(42)), 300, 12, 3, 4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := ps.RunLocalJob(ps.JobConfig{
		Sizes:      []int{12, 24, 3},
		Sync:       model.BSP,
		Workers:    3,
		Servers:    2,
		Dataset:    dataset,
		Batch:      20,
		Iterations: 120,
		LR:         0.2,
		Seed:       1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("rounds applied per shard: %d\n", res.ServerStats[0].Applies)
	fmt.Printf("loss decreased: %v\n", res.MeanFinalLoss < res.MeanInitialLoss/2)
	fmt.Printf("accuracy > 90%%: %v\n", res.TrainAccuracy > 0.9)
	// Output:
	// rounds applied per shard: 120
	// loss decreased: true
	// accuracy > 90%: true
}
