package ps

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cynthia/internal/data"
	"cynthia/internal/model"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := writeFrame(&buf, msgSync, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgSync || string(got) != "hello world" {
		t.Errorf("round trip = %d %q", typ, got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a header claiming a huge payload.
	buf.Write([]byte{msgSync, 0xff, 0xff, 0xff, 0xff})
	if _, _, err := readFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	xs := []float64{1.5, -2.25, math.Pi, 0, math.MaxFloat64}
	payload := encodeFloats(42, xs)
	step, got, err := decodeFloats(payload)
	if err != nil {
		t.Fatal(err)
	}
	if step != 42 || len(got) != len(xs) {
		t.Fatalf("step %d len %d", step, len(got))
	}
	for i := range xs {
		if xs[i] != got[i] {
			t.Errorf("xs[%d] = %v, got %v", i, xs[i], got[i])
		}
	}
	if _, _, err := decodeFloats([]byte{1, 2, 3}); err == nil {
		t.Error("malformed payload accepted")
	}
	if _, _, err := decodeFloats(make([]byte, 4+3)); err == nil {
		t.Error("non-multiple-of-8 payload accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	id, n, err := decodeHello(encodeHello(3, 999))
	if err != nil || id != 3 || n != 999 {
		t.Errorf("hello round trip: %d %d %v", id, n, err)
	}
	if _, _, err := decodeHello([]byte{1}); err == nil {
		t.Error("malformed hello accepted")
	}
}

// Property: shard ranges partition [0, numParams) exactly.
func TestPropertyShardRangesPartition(t *testing.T) {
	f := func(pRaw uint16, sRaw uint8) bool {
		numParams := int(pRaw) + 1
		shards := int(sRaw)%8 + 1
		if shards > numParams {
			shards = numParams
		}
		prevHi := 0
		for k := 0; k < shards; k++ {
			lo, hi := ShardRange(numParams, k, shards)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == numParams
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Init: nil, Workers: 1, LR: 0.1}); err == nil {
		t.Error("empty init accepted")
	}
	if _, err := NewServer(ServerConfig{Init: []float64{1}, Workers: 0, LR: 0.1}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewServer(ServerConfig{Init: []float64{1}, Workers: 1, LR: 0}); err == nil {
		t.Error("zero lr accepted")
	}
}

func TestServerASPAppliesImmediately(t *testing.T) {
	srv, err := NewServer(ServerConfig{Init: []float64{1, 2}, Sync: model.ASP, Workers: 4, LR: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	params, version, err := srv.sync(0, 1, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Errorf("version = %d, want 1", version)
	}
	if params[0] != 0 || params[1] != 1 {
		t.Errorf("params = %v, want [0 1]", params)
	}
}

func TestServerPureFetch(t *testing.T) {
	srv, err := NewServer(ServerConfig{Init: []float64{7}, Sync: model.BSP, Workers: 2, LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	params, version, err := srv.sync(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if version != 0 || params[0] != 7 {
		t.Errorf("fetch = %v v%d", params, version)
	}
}

func TestServerRejectsWrongGradLength(t *testing.T) {
	srv, _ := NewServer(ServerConfig{Init: []float64{1, 2}, Sync: model.ASP, Workers: 1, LR: 0.1})
	if _, _, err := srv.sync(0, 1, []float64{1}); err == nil {
		t.Error("wrong-length gradient accepted")
	}
}

func TestServerBSPBarrierAverages(t *testing.T) {
	srv, err := NewServer(ServerConfig{Init: []float64{10}, Sync: model.BSP, Workers: 2, LR: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []float64, 2)
	for _, g := range []float64{2, 4} {
		go func(g float64) {
			params, _, err := srv.sync(0, 1, []float64{g})
			if err != nil {
				t.Error(err)
			}
			done <- params
		}(g)
	}
	a, b := <-done, <-done
	// Average gradient (2+4)/2 = 3; params = 10 - 3 = 7; both workers see
	// the post-barrier value.
	if a[0] != 7 || b[0] != 7 {
		t.Errorf("barrier params = %v, %v, want 7", a, b)
	}
	if srv.Version() != 1 {
		t.Errorf("version = %d, want 1", srv.Version())
	}
}

func TestRunWorkerValidation(t *testing.T) {
	if _, err := RunWorker(WorkerConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func dataset(t *testing.T, n int) *data.Set {
	t.Helper()
	s, err := data.Synthetic(rand.New(rand.NewSource(42)), n, 12, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLocalJobBSPTrains(t *testing.T) {
	res, err := RunLocalJob(JobConfig{
		Sizes:      []int{12, 24, 3},
		Sync:       model.BSP,
		Workers:    3,
		Servers:    2,
		Dataset:    dataset(t, 300),
		Batch:      20,
		Iterations: 120,
		LR:         0.2,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanFinalLoss >= res.MeanInitialLoss*0.6 {
		t.Errorf("loss %.3f -> %.3f: insufficient progress", res.MeanInitialLoss, res.MeanFinalLoss)
	}
	if res.TrainAccuracy < 0.85 {
		t.Errorf("accuracy = %v, want > 0.85", res.TrainAccuracy)
	}
	// BSP: every shard applied exactly Iterations rounds, each of
	// Workers pushes.
	for k, ss := range res.ServerStats {
		if ss.Applies != 120 {
			t.Errorf("shard %d applies = %d, want 120", k, ss.Applies)
		}
		if ss.Pushes != 360 {
			t.Errorf("shard %d pushes = %d, want 360", k, ss.Pushes)
		}
		if ss.BytesIn <= 0 || ss.BytesOut <= 0 {
			t.Errorf("shard %d has no traffic", k)
		}
	}
	for _, ws := range res.WorkerStats {
		if ws.Iterations != 120 || len(ws.Losses) != 120 {
			t.Errorf("worker %d ran %d iterations", ws.ID, ws.Iterations)
		}
	}
}

func TestLocalJobASPTrains(t *testing.T) {
	res, err := RunLocalJob(JobConfig{
		Sizes:      []int{12, 16, 3},
		Sync:       model.ASP,
		Workers:    4,
		Servers:    1,
		Dataset:    dataset(t, 400),
		Batch:      16,
		Iterations: 100,
		LR:         0.05,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanFinalLoss >= res.MeanInitialLoss*0.8 {
		t.Errorf("ASP loss %.3f -> %.3f: insufficient progress", res.MeanInitialLoss, res.MeanFinalLoss)
	}
	// ASP: each push applies individually.
	if res.ServerStats[0].Applies != 400 {
		t.Errorf("applies = %d, want 400", res.ServerStats[0].Applies)
	}
	if acc := res.TrainAccuracy; acc < 0.8 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestLocalJobManyShards(t *testing.T) {
	res, err := RunLocalJob(JobConfig{
		Sizes:      []int{12, 8, 3},
		Sync:       model.BSP,
		Workers:    2,
		Servers:    4,
		Dataset:    dataset(t, 200),
		Batch:      10,
		Iterations: 40,
		LR:         0.2,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ServerStats) != 4 {
		t.Fatalf("%d shards", len(res.ServerStats))
	}
	if res.MeanFinalLoss >= res.MeanInitialLoss {
		t.Error("no training progress with 4 shards")
	}
}

func TestLocalJobValidation(t *testing.T) {
	if _, err := RunLocalJob(JobConfig{Workers: 0, Servers: 1}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := RunLocalJob(JobConfig{Workers: 1, Servers: 1}); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestGlobalLossCurve(t *testing.T) {
	r := &JobResult{WorkerStats: []*WorkerStats{
		{Losses: []float64{4, 2}},
		{Losses: []float64{2}},
	}}
	curve := r.GlobalLossCurve()
	if len(curve) != 2 || curve[0] != 3 || curve[1] != 2 {
		t.Errorf("curve = %v", curve)
	}
}

func TestBSPDeterministicAcrossShardCounts(t *testing.T) {
	// The sharding is a pure partition: with identical seeds, 1-shard and
	// 3-shard BSP jobs must produce identical final parameters.
	run := func(servers int) []float64 {
		res, err := RunLocalJob(JobConfig{
			Sizes:      []int{12, 8, 3},
			Sync:       model.BSP,
			Workers:    2,
			Servers:    servers,
			Dataset:    dataset(t, 100),
			Batch:      10,
			Iterations: 15,
			LR:         0.1,
			Seed:       9,
		})
		if err != nil {
			t.Fatal(err)
		}
		flat := make([]float64, res.FinalModel.NumParams())
		if err := res.FinalModel.FlattenParams(flat); err != nil {
			t.Fatal(err)
		}
		return flat
	}
	a, b := run(1), run(3)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("param %d differs across shard counts: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkLocalJobBSP(b *testing.B) {
	set, err := data.Synthetic(rand.New(rand.NewSource(42)), 200, 12, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := RunLocalJob(JobConfig{
			Sizes: []int{12, 16, 3}, Sync: model.BSP, Workers: 2, Servers: 1,
			Dataset: set, Batch: 10, Iterations: 20, LR: 0.1, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStalenessBSPZero(t *testing.T) {
	res, err := RunLocalJob(JobConfig{
		Sizes:      []int{12, 8, 3},
		Sync:       model.BSP,
		Workers:    4,
		Servers:    2,
		Dataset:    dataset(t, 200),
		Batch:      10,
		Iterations: 30,
		LR:         0.1,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range res.WorkerStats {
		if m := ws.MeanStaleness(); m != 0 {
			t.Errorf("worker %d BSP staleness = %v, want 0", ws.ID, m)
		}
	}
}

func TestStalenessASPGrowsWithWorkers(t *testing.T) {
	run := func(workers int) float64 {
		res, err := RunLocalJob(JobConfig{
			Sizes:      []int{12, 8, 3},
			Sync:       model.ASP,
			Workers:    workers,
			Servers:    1,
			Dataset:    dataset(t, 400),
			Batch:      10,
			Iterations: 60,
			LR:         0.01,
			Seed:       6,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, ws := range res.WorkerStats {
			total += ws.MeanStaleness()
		}
		return total / float64(workers)
	}
	s2 := run(2)
	s6 := run(6)
	// Theory: mean ASP staleness ~ workers-1. Allow generous slack for
	// scheduling variance, but the ordering and rough magnitude must hold.
	if s6 <= s2 {
		t.Errorf("staleness should grow with workers: 2wk=%v 6wk=%v", s2, s6)
	}
	if s2 < 0.3 || s2 > 3 {
		t.Errorf("2-worker staleness = %v, want ~1", s2)
	}
	if s6 < 2 || s6 > 10 {
		t.Errorf("6-worker staleness = %v, want ~5", s6)
	}
}

func TestMeanStalenessEmpty(t *testing.T) {
	var ws WorkerStats
	if ws.MeanStaleness() != 0 {
		t.Error("empty staleness should be 0")
	}
}
