package ps

// Regression tests for the hot-path bug sweep: Close draining handler
// goroutines, Listen refusing to double-bind, and the optimizer length
// guards that replaced the index-out-of-range panic in Adam.Apply.

import (
	"net"
	"strings"
	"testing"
	"time"

	"cynthia/internal/model"
	"cynthia/internal/obs"
)

// TestCloseWaitsForHandlers pins the Close contract: when Close returns,
// every handle goroutine has run its cleanup, so the connection gauge and
// the server's connection map are both empty. Before the WaitGroup fix,
// Close returned while handlers were still tearing down, which is exactly
// what made -race -count=3 teardown flaky.
func TestCloseWaitsForHandlers(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServer(ServerConfig{Init: []float64{1, 2, 3}, Sync: model.ASP, Workers: 4, LR: 0.1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := writeFrame(c, msgHello, encodeHello(i, 3)); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	// Wait until all four handlers registered (the gauge counts them).
	gauge := reg.Gauge("cynthia_ps_worker_connections", "")
	deadline := time.Now().Add(5 * time.Second)
	for gauge.Value() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("handlers never registered: gauge = %v", gauge.Value())
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	if v := gauge.Value(); v != 0 {
		t.Errorf("connection gauge = %v after Close, want 0 (handlers not drained)", v)
	}
	srv.mu.Lock()
	left := len(srv.conns)
	srv.mu.Unlock()
	if left != 0 {
		t.Errorf("%d connections still registered after Close, want 0", left)
	}
}

// TestListenTwiceErrors pins that a second Listen no longer silently
// replaces the listener (orphaning the first accept loop), and that a
// closed server refuses to listen.
func TestListenTwiceErrors(t *testing.T) {
	srv, err := NewServer(ServerConfig{Init: []float64{1}, Sync: model.ASP, Workers: 1, LR: 0.1, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("second Listen succeeded, want already-listening error")
	} else if !strings.Contains(err.Error(), addr) {
		t.Errorf("already-listening error %q does not name the bound address %s", err, addr)
	}
	// The original listener must still be serving after the failed rebind.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("first listener dead after failed second Listen: %v", err)
	}
	c.Close()
	srv.Close()
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Close succeeded, want error")
	}
}

// TestAdamGradientLengthGuard pins the fix for the index-out-of-range
// panic: moment state is sized by the first Apply, and a later call with a
// different vector length must return an error, not panic.
func TestAdamGradientLengthGuard(t *testing.T) {
	a := &Adam{LR: 0.1}
	if err := a.Apply([]float64{1, 2}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply([]float64{1, 2, 3}, []float64{1, 1, 1}); err == nil {
		t.Error("Adam accepted a longer vector after sizing state, want error")
	}
	if err := a.Apply([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("Adam accepted grad shorter than params, want error")
	}
	// The guarded calls must not have corrupted state for the right shape.
	if err := a.Apply([]float64{1, 2}, []float64{1, 1}); err != nil {
		t.Errorf("well-formed Apply after rejected ones failed: %v", err)
	}
}

// TestAdamApplyDoesNotMutateDefaults pins that Apply resolves the β/ε
// defaults locally instead of writing them back into the configuration.
func TestAdamApplyDoesNotMutateDefaults(t *testing.T) {
	a := &Adam{LR: 0.1}
	if err := a.Apply([]float64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if a.Beta1 != 0 || a.Beta2 != 0 || a.Eps != 0 {
		t.Errorf("Apply mutated defaults: Beta1=%v Beta2=%v Eps=%v, want zeros", a.Beta1, a.Beta2, a.Eps)
	}
	// NewOptimizer is where defaults are resolved, once.
	opt, err := NewOptimizer("adam", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	built := opt.(*Adam)
	if built.Beta1 != 0.9 || built.Beta2 != 0.999 || built.Eps != 1e-8 {
		t.Errorf("NewOptimizer defaults = %v/%v/%v, want 0.9/0.999/1e-8", built.Beta1, built.Beta2, built.Eps)
	}
}

// TestMomentumAndSGDLengthGuards pins the same shape validation for the
// other optimizers.
func TestMomentumAndSGDLengthGuards(t *testing.T) {
	m := &Momentum{LR: 0.1, Beta: 0.9}
	if err := m.Apply([]float64{1, 2}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply([]float64{1, 2, 3}, []float64{1, 1, 1}); err == nil {
		t.Error("Momentum accepted a longer vector after sizing state, want error")
	}
	if err := m.Apply([]float64{1, 2}, []float64{1, 1, 1}); err == nil {
		t.Error("Momentum accepted grad longer than params, want error")
	}
	s := &SGD{LR: 0.1}
	if err := s.Apply([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("SGD accepted mismatched lengths, want error")
	}
}

// TestSyncSurfacesOptimizerError pins the server-side error path: a
// misconfigured optimizer (state sized for a different shard) turns into a
// sync error and closes the shard instead of panicking the handler.
func TestSyncSurfacesOptimizerError(t *testing.T) {
	bad := &Adam{LR: 0.1}
	if err := bad.Apply([]float64{1, 2, 3}, []float64{0, 0, 0}); err != nil { // state sized for 3
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Init: []float64{1, 2}, Sync: model.ASP, Workers: 1, LR: 0.1,
		Optimizer: bad, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.sync(0, 1, []float64{1, 1}); err == nil {
		t.Fatal("sync with poisoned optimizer succeeded, want error")
	}
	// The shard is closed afterwards: further syncs fail fast.
	if _, _, err := srv.sync(0, 2, []float64{1, 1}); err != errClosed {
		t.Errorf("sync after optimizer failure = %v, want errClosed", err)
	}
}
