// Package ps implements a real parameter-server training framework over
// TCP: sharded parameter servers with BSP and ASP synchronization, worker
// clients that train real models (internal/nn) on real data
// (internal/data), and a local job orchestrator. This is the genuine
// counterpart of the TensorFlow PS architecture the paper's testbed runs —
// gradient pushes, parameter pulls, barriers, and staleness all happen for
// real on the wire.
package ps

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Message types on the wire.
const (
	msgHello  byte = iota + 1 // worker -> server: shard length check
	msgSync                   // worker -> server: gradient push + param pull
	msgParams                 // server -> worker: fresh parameters
	msgError                  // server -> worker: fatal error text
	msgBye                    // worker -> server: clean shutdown
)

// maxFrame bounds a frame payload (512 MB) to fail fast on corruption.
const maxFrame = 512 << 20

// frame layout: type (1 byte) | payload length (4 bytes LE) | payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("ps: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("ps: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeFloats appends the vector to a fresh payload with a step prefix.
func encodeFloats(step uint32, xs []float64) []byte {
	out := make([]byte, 4+8*len(xs))
	binary.LittleEndian.PutUint32(out, step)
	for i, v := range xs {
		binary.LittleEndian.PutUint64(out[4+8*i:], math.Float64bits(v))
	}
	return out
}

// decodeFloats splits a payload into its step prefix and vector.
func decodeFloats(payload []byte) (step uint32, xs []float64, err error) {
	if len(payload) < 4 || (len(payload)-4)%8 != 0 {
		return 0, nil, fmt.Errorf("ps: malformed vector payload of %d bytes", len(payload))
	}
	step = binary.LittleEndian.Uint32(payload)
	xs = make([]float64, (len(payload)-4)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[4+8*i:]))
	}
	return step, xs, nil
}

// encodeHello carries the worker id and the expected shard length.
func encodeHello(workerID, shardLen int) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out, uint32(workerID))
	binary.LittleEndian.PutUint32(out[4:], uint32(shardLen))
	return out
}

func decodeHello(payload []byte) (workerID, shardLen int, err error) {
	if len(payload) != 8 {
		return 0, 0, fmt.Errorf("ps: malformed hello of %d bytes", len(payload))
	}
	return int(binary.LittleEndian.Uint32(payload)), int(binary.LittleEndian.Uint32(payload[4:])), nil
}

// ShardRange computes the contiguous slice [lo, hi) of a numParams-long
// flat parameter vector owned by shard k of nShards. Shards differ in
// size by at most one element.
func ShardRange(numParams, k, nShards int) (lo, hi int) {
	base := numParams / nShards
	extra := numParams % nShards
	lo = k*base + min(k, extra)
	size := base
	if k < extra {
		size++
	}
	return lo, lo + size
}
