package ps

import (
	"fmt"
	"math/rand"
	"sync"

	"cynthia/internal/data"
	"cynthia/internal/model"
	"cynthia/internal/nn"
)

// JobConfig describes a complete local training job: PS shards and workers
// all run in this process over real TCP loopback connections.
type JobConfig struct {
	// Sizes is the MLP layer layout, e.g. [784, 512, 512, 10]. Ignored
	// when ModelFactory is set.
	Sizes []int
	// ModelFactory, when non-nil, builds each replica (and the reference
	// model) from a seed — the hook for training ConvNets or custom
	// architectures. Every invocation with the same seed must produce
	// identically initialized models.
	ModelFactory func(seed int64) (nn.Model, error)
	// Sync is BSP or ASP.
	Sync model.SyncMode
	// Workers and Servers are the cluster shape.
	Workers int
	Servers int
	// Dataset is the shared training set, sharded across workers.
	Dataset *data.Set
	// Batch is the per-worker mini-batch size.
	Batch int
	// Iterations is the per-worker iteration count.
	Iterations int
	// LR is the server-side learning rate.
	LR float64
	// Optimizer selects the server-side update rule: "sgd" (default),
	// "momentum", or "adam".
	Optimizer string
	// MaxStaleness, when > 0 with ASP, enforces the SSP staleness bound.
	MaxStaleness int
	// Seed controls initialization and shuffling.
	Seed int64
}

// JobResult collects the outcome of a local job.
type JobResult struct {
	// WorkerStats holds each worker's run summary.
	WorkerStats []*WorkerStats
	// ServerStats holds each shard's counters.
	ServerStats []ServerStats
	// FinalModel is a replica loaded with the final parameters.
	FinalModel nn.Model
	// TrainAccuracy is the final model's accuracy on the full dataset.
	TrainAccuracy float64
	// MeanFinalLoss averages the last mini-batch loss across workers.
	MeanFinalLoss float64
	// MeanInitialLoss averages the first mini-batch loss across workers.
	MeanInitialLoss float64
}

// RunLocalJob launches the shards and workers and waits for completion.
func RunLocalJob(cfg JobConfig) (*JobResult, error) {
	if cfg.Workers < 1 || cfg.Servers < 1 {
		return nil, fmt.Errorf("ps: job needs >=1 worker and server, got %d/%d", cfg.Workers, cfg.Servers)
	}
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("ps: job has no dataset")
	}
	factory := cfg.ModelFactory
	if factory == nil {
		factory = func(seed int64) (nn.Model, error) {
			return nn.NewMLP(cfg.Sizes, rand.New(rand.NewSource(seed)))
		}
	}
	ref, err := factory(cfg.Seed)
	if err != nil {
		return nil, err
	}
	numParams := ref.NumParams()
	if cfg.Servers > numParams {
		return nil, fmt.Errorf("ps: %d shards for %d parameters", cfg.Servers, numParams)
	}
	flat := make([]float64, numParams)
	if err := ref.FlattenParams(flat); err != nil {
		return nil, err
	}

	// Launch shards.
	servers := make([]*Server, cfg.Servers)
	addrs := make([]string, cfg.Servers)
	defer func() {
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
	}()
	for k := 0; k < cfg.Servers; k++ {
		lo, hi := ShardRange(numParams, k, cfg.Servers)
		opt, err := NewOptimizer(cfg.Optimizer, cfg.LR)
		if err != nil {
			return nil, err
		}
		srv, err := NewServer(ServerConfig{
			Init:         flat[lo:hi],
			Sync:         cfg.Sync,
			Workers:      cfg.Workers,
			LR:           cfg.LR,
			Optimizer:    opt,
			MaxStaleness: cfg.MaxStaleness,
		})
		if err != nil {
			return nil, err
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		servers[k] = srv
		addrs[k] = addr
	}

	// Launch workers.
	type outcome struct {
		stats *WorkerStats
		err   error
	}
	results := make([]outcome, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		shard, err := cfg.Dataset.Shard(w, cfg.Workers)
		if err != nil {
			return nil, err
		}
		replica, err := factory(cfg.Seed)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(w int, replica nn.Model, shard *data.Set) {
			defer wg.Done()
			stats, err := RunWorker(WorkerConfig{
				ID:         w,
				Servers:    addrs,
				Model:      replica,
				Train:      shard,
				Batch:      cfg.Batch,
				Iterations: cfg.Iterations,
				Seed:       cfg.Seed + int64(w)*7919,
			})
			results[w] = outcome{stats: stats, err: err}
		}(w, replica, shard)
	}
	wg.Wait()

	res := &JobResult{}
	for w, oc := range results {
		if oc.err != nil {
			return nil, fmt.Errorf("ps: worker %d failed: %w", w, oc.err)
		}
		res.WorkerStats = append(res.WorkerStats, oc.stats)
	}

	// Assemble the final model from the shards.
	final := make([]float64, numParams)
	for k, srv := range servers {
		lo, hi := ShardRange(numParams, k, cfg.Servers)
		copy(final[lo:hi], srv.Params())
		res.ServerStats = append(res.ServerStats, srv.Stats())
	}
	fm, err := factory(cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := fm.SetParams(final); err != nil {
		return nil, err
	}
	res.FinalModel = fm
	res.TrainAccuracy = fm.Accuracy(cfg.Dataset.X, cfg.Dataset.Labels)

	first, last := 0.0, 0.0
	for _, ws := range res.WorkerStats {
		if len(ws.Losses) > 0 {
			first += ws.Losses[0]
			last += ws.Losses[len(ws.Losses)-1]
		}
	}
	res.MeanInitialLoss = first / float64(cfg.Workers)
	res.MeanFinalLoss = last / float64(cfg.Workers)
	return res, nil
}

// GlobalLossCurve averages the per-iteration losses across workers,
// producing one curve comparable to the paper's Fig. 4.
func (r *JobResult) GlobalLossCurve() []float64 {
	maxLen := 0
	for _, ws := range r.WorkerStats {
		if len(ws.Losses) > maxLen {
			maxLen = len(ws.Losses)
		}
	}
	out := make([]float64, maxLen)
	counts := make([]int, maxLen)
	for _, ws := range r.WorkerStats {
		for i, l := range ws.Losses {
			out[i] += l
			counts[i]++
		}
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
		}
	}
	return out
}
