package ps

import (
	"fmt"
	"math"

	"cynthia/internal/tensor"
)

// Optimizer applies a gradient to a parameter vector, holding any state it
// needs (velocity, moments) between steps. Implementations live on the
// parameter server, as in production PS deployments. The paper's
// experiments use SGD; it notes (Sec. 2) that its loss-fitting method also
// covers other optimizers such as Adam, so both are provided.
type Optimizer interface {
	// Apply performs one update of params using grad. It returns an error
	// — leaving params and optimizer state untouched — when grad and
	// params disagree in length, or when stateful optimizers (momentum,
	// Adam) see a vector length different from the one that sized their
	// state on an earlier step.
	Apply(params, grad []float64) error
	// Name identifies the optimizer.
	Name() string
}

// SGD is plain stochastic gradient descent: w -= lr*g.
type SGD struct {
	LR float64
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Apply implements Optimizer.
func (s *SGD) Apply(params, grad []float64) error {
	if len(grad) != len(params) {
		return fmt.Errorf("ps: sgd: gradient of %d values for %d params", len(grad), len(params))
	}
	tensor.Axpy(-s.LR, grad, params)
	return nil
}

// Momentum is SGD with classical momentum: v = β·v + g; w -= lr·v.
type Momentum struct {
	LR   float64
	Beta float64
	v    []float64
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// Apply implements Optimizer.
func (m *Momentum) Apply(params, grad []float64) error {
	if len(grad) != len(params) {
		return fmt.Errorf("ps: momentum: gradient of %d values for %d params", len(grad), len(params))
	}
	if m.v == nil {
		m.v = make([]float64, len(params))
	}
	if len(m.v) != len(params) {
		return fmt.Errorf("ps: momentum: %d params but velocity state sized for %d", len(params), len(m.v))
	}
	for i, g := range grad {
		m.v[i] = m.Beta*m.v[i] + g
		params[i] -= m.LR * m.v[i]
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction. The
// zero values of Beta1/Beta2/Eps select the standard defaults (0.9,
// 0.999, 1e-8); NewOptimizer resolves them explicitly at construction,
// and Apply never mutates the configuration fields.
type Adam struct {
	LR    float64
	Beta1 float64 // defaults to 0.9 when zero
	Beta2 float64 // defaults to 0.999 when zero
	Eps   float64 // defaults to 1e-8 when zero
	m, v  []float64
	t     int
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Apply implements Optimizer.
func (a *Adam) Apply(params, grad []float64) error {
	if len(grad) != len(params) {
		return fmt.Errorf("ps: adam: gradient of %d values for %d params", len(grad), len(params))
	}
	if a.m == nil {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
	}
	if len(a.m) != len(params) {
		return fmt.Errorf("ps: adam: %d params but moment state sized for %d", len(params), len(a.m))
	}
	b1, b2, eps := a.Beta1, a.Beta2, a.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	a.t++
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i, g := range grad {
		a.m[i] = b1*a.m[i] + (1-b1)*g
		a.v[i] = b2*a.v[i] + (1-b2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + eps)
	}
	return nil
}

// NewOptimizer builds an optimizer by name ("sgd", "momentum", "adam")
// with the given learning rate. Defaults (momentum β, Adam β1/β2/ε) are
// resolved here, once, rather than lazily inside Apply.
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("ps: learning rate %v <= 0", lr)
	}
	switch name {
	case "", "sgd":
		return &SGD{LR: lr}, nil
	case "momentum":
		return &Momentum{LR: lr, Beta: 0.9}, nil
	case "adam":
		return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}, nil
	default:
		return nil, fmt.Errorf("ps: unknown optimizer %q", name)
	}
}
