package ps

import (
	"fmt"
	"math"

	"cynthia/internal/tensor"
)

// Optimizer applies a gradient to a parameter vector, holding any state it
// needs (velocity, moments) between steps. Implementations live on the
// parameter server, as in production PS deployments. The paper's
// experiments use SGD; it notes (Sec. 2) that its loss-fitting method also
// covers other optimizers such as Adam, so both are provided.
type Optimizer interface {
	// Apply performs one update of params using grad (same length).
	Apply(params, grad []float64)
	// Name identifies the optimizer.
	Name() string
}

// SGD is plain stochastic gradient descent: w -= lr*g.
type SGD struct {
	LR float64
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Apply implements Optimizer.
func (s *SGD) Apply(params, grad []float64) {
	tensor.Axpy(-s.LR, grad, params)
}

// Momentum is SGD with classical momentum: v = β·v + g; w -= lr·v.
type Momentum struct {
	LR   float64
	Beta float64
	v    []float64
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// Apply implements Optimizer.
func (m *Momentum) Apply(params, grad []float64) {
	if m.v == nil {
		m.v = make([]float64, len(params))
	}
	for i, g := range grad {
		m.v[i] = m.Beta*m.v[i] + g
		params[i] -= m.LR * m.v[i]
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64 // defaults to 0.9 when zero
	Beta2 float64 // defaults to 0.999 when zero
	Eps   float64 // defaults to 1e-8 when zero
	m, v  []float64
	t     int
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Apply implements Optimizer.
func (a *Adam) Apply(params, grad []float64) {
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.m == nil {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, g := range grad {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
}

// NewOptimizer builds an optimizer by name ("sgd", "momentum", "adam")
// with the given learning rate.
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("ps: learning rate %v <= 0", lr)
	}
	switch name {
	case "", "sgd":
		return &SGD{LR: lr}, nil
	case "momentum":
		return &Momentum{LR: lr, Beta: 0.9}, nil
	case "adam":
		return &Adam{LR: lr}, nil
	default:
		return nil, fmt.Errorf("ps: unknown optimizer %q", name)
	}
}
