package ps

import (
	"bytes"
	"testing"
)

// FuzzReadFrame: arbitrary bytes must never panic the frame reader, and
// any frame it accepts must round-trip through writeFrame.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, msgSync, []byte("payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{msgHello, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		typ2, payload2, err := readFrame(&buf)
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

// FuzzDecodeFloats: arbitrary payloads must never panic, and accepted
// payloads must round-trip.
func FuzzDecodeFloats(f *testing.F) {
	f.Add(encodeFloats(3, []float64{1, 2, 3}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		step, xs, err := decodeFloats(data)
		if err != nil {
			return
		}
		again := encodeFloats(step, xs)
		if !bytes.Equal(again, data) {
			// NaN payload bits may not round-trip bit-exactly through
			// float64; compare via a second decode instead.
			step2, xs2, err := decodeFloats(again)
			if err != nil || step2 != step || len(xs2) != len(xs) {
				t.Fatalf("round trip mismatch")
			}
		}
	})
}
