package baseline

import (
	"fmt"

	"cynthia/internal/cloud"
	"cynthia/internal/model"
	"cynthia/internal/numeric"
	"cynthia/internal/perf"
)

// Sample is one Optimus profiling observation: the measured mean iteration
// time of the workload on a cluster of nWorkers and nPS homogeneous
// dockers.
type Sample struct {
	Workers  int
	PS       int
	IterTime float64
}

// Optimus is the online-fitted speed model of Peng et al.: the iteration
// time is a parametric function of the worker and PS counts, with
// coefficients fitted by least squares over profiling samples. Following
// the structure the paper describes (computation shrinking with workers,
// communication growing with workers per PS, no overlap and no bottleneck
// term), the model is
//
//	BSP: titer(n, p) = θ0/n + θ1·n/p + θ2
//	ASP: titer(n, p) = θ0 + θ1·n/p
//
// Its weakness — inherited faithfully — is extrapolation: fitted on
// bottleneck-free small clusters, it cannot anticipate the PS saturation
// regime (paper Sec. 5.1), and its accuracy depends on the quality of the
// samples.
type Optimus struct {
	sync  model.SyncMode
	theta []float64
	// baseGFLOPS is the worker capability the samples were taken on;
	// predictions scale the compute term for other homogeneous worker
	// types and use the slowest worker for heterogeneous clusters.
	baseGFLOPS float64
}

// MinSamples is the number of profiling observations the fit requires.
const MinSamples = 3

// FitOptimus fits the Optimus model to profiling samples measured on
// workers with the given CPU capability.
func FitOptimus(sync model.SyncMode, baseGFLOPS float64, samples []Sample) (*Optimus, error) {
	if len(samples) < MinSamples {
		return nil, fmt.Errorf("baseline: optimus needs >= %d samples, got %d", MinSamples, len(samples))
	}
	if baseGFLOPS <= 0 {
		return nil, fmt.Errorf("baseline: non-positive baseline capability")
	}
	var x [][]float64
	var y []float64
	for _, s := range samples {
		if s.Workers < 1 || s.PS < 1 || s.IterTime <= 0 {
			return nil, fmt.Errorf("baseline: bad sample %+v", s)
		}
		x = append(x, features(sync, s.Workers, s.PS))
		y = append(y, s.IterTime)
	}
	theta, err := numeric.LeastSquares(x, y)
	if err != nil {
		return nil, fmt.Errorf("baseline: optimus fit: %w", err)
	}
	// Guard against pathological fits: a negative compute or
	// communication coefficient would predict negative times at scale.
	for i, th := range theta {
		if i < 2 && th < 0 {
			theta[i] = 0
		}
	}
	return &Optimus{sync: sync, theta: theta, baseGFLOPS: baseGFLOPS}, nil
}

func features(sync model.SyncMode, n, p int) []float64 {
	nf, pf := float64(n), float64(p)
	if sync == model.ASP {
		return []float64{1, nf / pf}
	}
	return []float64{1 / nf, nf / pf, 1}
}

// Name implements perf.Predictor.
func (*Optimus) Name() string { return "Optimus" }

// Theta exposes the fitted coefficients (for reporting).
func (o *Optimus) Theta() []float64 { return append([]float64(nil), o.theta...) }

// IterTime implements perf.Predictor. The compute-dependent terms scale
// with the ratio of sampled to target worker speed; heterogeneous clusters
// are pessimistically represented by their slowest worker, since the model
// has no notion of per-worker rates (the inapplicability the paper points
// out in Sec. 6).
func (o *Optimus) IterTime(p *perf.Profile, cluster cloud.ClusterSpec) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n, nps := cluster.NumWorkers(), cluster.NumPS()
	if n < 1 || nps < 1 {
		return 0, fmt.Errorf("baseline: cluster needs >=1 worker and >=1 PS")
	}
	if p.Workload.Sync != o.sync {
		return 0, fmt.Errorf("baseline: optimus fitted for %v, asked about %v", o.sync, p.Workload.Sync)
	}
	f := features(o.sync, n, nps)
	speedRatio := o.baseGFLOPS / cluster.MinWorkerGFLOPS()
	var t float64
	if o.sync == model.ASP {
		// θ0 is the compute term for ASP.
		t = o.theta[0]*speedRatio + o.theta[1]*f[1]
	} else {
		t = o.theta[0]*f[0]*speedRatio + o.theta[1]*f[1] + o.theta[2]
	}
	if t < 0 {
		t = 0
	}
	return t, nil
}

// TrainingTime implements perf.Predictor.
func (o *Optimus) TrainingTime(p *perf.Profile, cluster cloud.ClusterSpec, iters int) (float64, error) {
	if iters <= 0 {
		return 0, fmt.Errorf("baseline: iteration count %d must be positive", iters)
	}
	titer, err := o.IterTime(p, cluster)
	if err != nil {
		return 0, err
	}
	if o.sync == model.ASP {
		return float64(iters) * titer / float64(cluster.NumWorkers()), nil
	}
	return float64(iters) * titer, nil
}

var _ perf.Predictor = (*Optimus)(nil)
