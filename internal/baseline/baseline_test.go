package baseline

import (
	"math"
	"testing"

	"cynthia/internal/cloud"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/model"
	"cynthia/internal/perf"
)

func lookup(t *testing.T, name string) cloud.InstanceType {
	t.Helper()
	it, err := cloud.DefaultCatalog().Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func prof(t *testing.T, name string, base cloud.InstanceType) *perf.Profile {
	t.Helper()
	w, err := model.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return perf.SyntheticProfile(w, base)
}

func TestPaleoName(t *testing.T) {
	if (Paleo{}).Name() != "Paleo" {
		t.Error("wrong name")
	}
}

func TestPaleoBSPNoOverlap(t *testing.T) {
	// Paleo must predict tcomp + tcomm, which exceeds the overlapped
	// max(tcomp, tcomm) whenever both terms are nonzero.
	m4 := lookup(t, cloud.M4XLarge)
	p := prof(t, "cifar10 DNN", m4)
	cluster := cloud.Homogeneous(m4, 12, 1)
	paleoT, err := Paleo{}.IterTime(p, cluster)
	if err != nil {
		t.Fatal(err)
	}
	cynthiaT, err := perf.Cynthia{}.IterTime(p, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if paleoT <= cynthiaT {
		t.Errorf("Paleo %v should exceed overlapped Cynthia %v for BSP", paleoT, cynthiaT)
	}
	tcomp := p.WiterGFLOPs / (12 * m4.GFLOPS)
	tcomm := 2 * p.GparamMB * 12 / m4.NetMBps
	if math.Abs(paleoT-(tcomp+tcomm)) > 1e-9 {
		t.Errorf("Paleo = %v, want %v", paleoT, tcomp+tcomm)
	}
}

func TestPaleoUsesLayerGraph(t *testing.T) {
	m4 := lookup(t, cloud.M4XLarge)
	p := prof(t, "VGG-19", m4)
	// Corrupt the profiled witer; Paleo should be unaffected because it
	// derives work from the layer graph.
	p.WiterGFLOPs *= 10
	cluster := cloud.Homogeneous(m4, 2, 1)
	got, err := Paleo{}.IterTime(p, cluster)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Workload
	want := w.Net.IterGFLOPs(w.Batch)/m4.GFLOPS + 2*w.Net.ParamMB()/m4.NetMBps
	// ASP mean over homogeneous workers equals the single-worker time.
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Paleo = %v, want %v (layer-derived)", got, want)
	}
}

func TestPaleoValidation(t *testing.T) {
	m4 := lookup(t, cloud.M4XLarge)
	p := prof(t, "VGG-19", m4)
	if _, err := (Paleo{}).IterTime(p, cloud.ClusterSpec{}); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := (Paleo{}).TrainingTime(p, cloud.Homogeneous(m4, 1, 1), 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestOptimusFitValidation(t *testing.T) {
	if _, err := FitOptimus(model.BSP, 3, nil); err == nil {
		t.Error("no samples accepted")
	}
	bad := []Sample{{1, 1, 1}, {2, 1, 0}, {3, 1, 1}}
	if _, err := FitOptimus(model.BSP, 3, bad); err == nil {
		t.Error("non-positive sample accepted")
	}
	good := []Sample{{1, 1, 2}, {2, 1, 1.5}, {4, 1, 1.2}}
	if _, err := FitOptimus(model.BSP, 0, good); err == nil {
		t.Error("zero capability accepted")
	}
}

func TestOptimusRecoversSyntheticBSPModel(t *testing.T) {
	// Generate samples from a known ground truth and check recovery.
	truth := func(n, p float64) float64 { return 4/n + 0.1*n/p + 0.05 }
	var samples []Sample
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		samples = append(samples, Sample{Workers: n, PS: 1, IterTime: truth(float64(n), 1)})
	}
	o, err := FitOptimus(model.BSP, 3.0, samples)
	if err != nil {
		t.Fatal(err)
	}
	th := o.Theta()
	if math.Abs(th[0]-4) > 1e-6 || math.Abs(th[1]-0.1) > 1e-6 || math.Abs(th[2]-0.05) > 1e-6 {
		t.Errorf("theta = %v, want [4 0.1 0.05]", th)
	}
}

func TestOptimusSyncModeMismatch(t *testing.T) {
	m4 := lookup(t, cloud.M4XLarge)
	samples := []Sample{{1, 1, 2}, {2, 1, 1.5}, {4, 1, 1.2}}
	o, err := FitOptimus(model.BSP, m4.GFLOPS, samples)
	if err != nil {
		t.Fatal(err)
	}
	p := prof(t, "VGG-19", m4) // ASP workload
	if _, err := o.IterTime(p, cloud.Homogeneous(m4, 2, 1)); err == nil {
		t.Error("sync-mode mismatch accepted")
	}
}

func TestOptimusInterpolatesWellExtrapolatesPoorly(t *testing.T) {
	// Fit on 1-4 workers, then compare against the simulator inside and
	// beyond the sampled regime for VGG-19 ASP (paper Fig. 6(a)).
	m4 := lookup(t, cloud.M4XLarge)
	w, _ := model.WorkloadByName("VGG-19")
	o, err := FitFromSimulator(w, m4)
	if err != nil {
		t.Fatal(err)
	}
	p := perf.SyntheticProfile(w, m4)

	observe := func(n int) float64 {
		res, err := ddnnsim.Run(w, ddnnsim.Homogeneous(m4, n, 1), ddnnsim.Options{Iterations: 30 * n, LossEvery: 30 * n})
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainingTime
	}
	predict := func(n int) float64 {
		v, err := o.TrainingTime(p, cloud.Homogeneous(m4, n, 1), 30*n)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Interpolation: 3 workers, inside the sampled range.
	if e := perf.PredictionError(predict(3), observe(3)); e > 0.10 {
		t.Errorf("interpolation error %.1f%% > 10%%", e*100)
	}
	// Extrapolation into the NIC-saturated regime: the fit must
	// underpredict substantially (the paper's 27.9% at 12 workers).
	obs12 := observe(12)
	pred12 := predict(12)
	if pred12 >= obs12 {
		t.Errorf("Optimus at 12 workers should underpredict: pred %v obs %v", pred12, obs12)
	}
	if e := perf.PredictionError(pred12, obs12); e < 0.10 {
		t.Errorf("Optimus extrapolation error %.1f%%, want > 10%% (bottleneck-blind)", e*100)
	}
}

// The paper's central comparison (Fig. 6): once the PS bottlenecks,
// Cynthia's prediction error stays well below Optimus's and Paleo's.
func TestFigure6RelativeAccuracy(t *testing.T) {
	m4 := lookup(t, cloud.M4XLarge)
	w, _ := model.WorkloadByName("VGG-19")
	p := perf.SyntheticProfile(w, m4)
	o, err := FitFromSimulator(w, m4)
	if err != nil {
		t.Fatal(err)
	}
	cluster := cloud.Homogeneous(m4, 12, 1)
	iters := 360
	res, err := ddnnsim.Run(w, cluster, ddnnsim.Options{Iterations: iters, LossEvery: iters})
	if err != nil {
		t.Fatal(err)
	}
	obs := res.TrainingTime

	errOf := func(pred perf.Predictor) float64 {
		v, err := pred.TrainingTime(p, cluster, iters)
		if err != nil {
			t.Fatal(err)
		}
		return perf.PredictionError(v, obs)
	}
	cynthiaErr := errOf(perf.Cynthia{})
	optimusErr := errOf(o)
	paleoErr := errOf(Paleo{})
	if cynthiaErr >= optimusErr {
		t.Errorf("Cynthia error %.1f%% should beat Optimus %.1f%%", cynthiaErr*100, optimusErr*100)
	}
	if cynthiaErr >= paleoErr {
		t.Errorf("Cynthia error %.1f%% should beat Paleo %.1f%%", cynthiaErr*100, paleoErr*100)
	}
	if cynthiaErr > 0.10 {
		t.Errorf("Cynthia error %.1f%% too large", cynthiaErr*100)
	}
}

func TestCollectSamplesASPDepth(t *testing.T) {
	m4 := lookup(t, cloud.M4XLarge)
	w, _ := model.WorkloadByName("ResNet-32")
	samples, err := CollectSamples(w, m4, []int{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("%d samples, want 2", len(samples))
	}
	// Per-worker ASP iteration times at 1 and 2 workers should be close
	// (no bottleneck for ResNet at this scale).
	if rel := math.Abs(samples[0].IterTime-samples[1].IterTime) / samples[0].IterTime; rel > 0.1 {
		t.Errorf("per-worker iteration times diverge: %+v", samples)
	}
}

func TestOptimusSpeedScaling(t *testing.T) {
	// Fitted on m4 samples, predicting for a slower homogeneous cluster
	// must inflate the compute term.
	m4 := lookup(t, cloud.M4XLarge)
	m1 := lookup(t, cloud.M1XLarge)
	w, _ := model.WorkloadByName("cifar10 DNN")
	o, err := FitFromSimulator(w, m4)
	if err != nil {
		t.Fatal(err)
	}
	p := perf.SyntheticProfile(w, m4)
	fast, err := o.IterTime(p, cloud.Homogeneous(m4, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := o.IterTime(p, cloud.Homogeneous(m1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if slow <= fast {
		t.Errorf("slow cluster prediction %v should exceed fast %v", slow, fast)
	}
}
