package baseline

import (
	"fmt"

	"cynthia/internal/cloud"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/model"
)

// DefaultSampleSizes are the worker counts Optimus profiles at: small,
// bottleneck-free clusters, which is precisely why the fitted model
// extrapolates poorly into the PS-saturation regime.
var DefaultSampleSizes = []int{1, 2, 3, 4}

// CollectSamples gathers Optimus profiling observations by running short
// training jobs at the given worker counts (one PS) on homogeneous
// clusters of the base type.
func CollectSamples(w *model.Workload, base cloud.InstanceType, sizes []int, itersPerRun int) ([]Sample, error) {
	if len(sizes) == 0 {
		sizes = DefaultSampleSizes
	}
	if itersPerRun <= 0 {
		itersPerRun = 30
	}
	var out []Sample
	for _, n := range sizes {
		iters := itersPerRun
		if w.Sync == model.ASP {
			iters = itersPerRun * n // keep per-worker depth constant
		}
		res, err := ddnnsim.Run(w, ddnnsim.Homogeneous(base, n, 1), ddnnsim.Options{
			Iterations: iters,
			LossEvery:  iters,
		})
		if err != nil {
			return nil, fmt.Errorf("baseline: sampling %s at %d workers: %w", w.Name, n, err)
		}
		titer := res.MeanIterTime
		if w.Sync == model.ASP {
			// Mean per-worker iteration time, the quantity the model fits.
			titer = res.TrainingTime * float64(n) / float64(iters)
		}
		out = append(out, Sample{Workers: n, PS: 1, IterTime: titer})
	}
	return out, nil
}

// FitFromSimulator profiles the workload at DefaultSampleSizes in the
// simulator and fits an Optimus model, the way the experiments use it.
func FitFromSimulator(w *model.Workload, base cloud.InstanceType) (*Optimus, error) {
	samples, err := CollectSamples(w, base, nil, 0)
	if err != nil {
		return nil, err
	}
	return FitOptimus(w.Sync, base.GFLOPS, samples)
}
