package baseline

import (
	"context"
	"fmt"

	"cynthia/internal/cloud"
	"cynthia/internal/plan"
)

// MarginalGain is the Optimus-style resource allocator of Peng et al.
// (EuroSys 2018), adapted to Cynthia's goal model so it can stand in for
// Algorithm 1 behind the plan.Provisioner interface: starting from the
// smallest legal cluster of each instance type (1 worker + 1 PS), it
// repeatedly adds the docker — one more worker, or one more PS where
// Constraint (11) permits — whose addition yields the greater reduction in
// predicted training time, and stops when the (headroom-adjusted) goal is
// met, the worker quota is reached, or no addition improves the estimate.
// The cheapest goal-meeting allocation across types wins.
//
// Unlike the Cynthia engine it has no Theorem 4.1 bounds and no loss-aware
// escalation: the greedy trajectory can stall in a local optimum (adding
// either docker briefly slows the predicted run even though a larger
// cluster would meet the goal), which is exactly the behavior the paper
// contrasts against in Sec. 5.2. Pair it with the fitted Optimus predictor
// for the full comparator, or with perf.Cynthia to isolate the allocation
// policy from the performance model.
type MarginalGain struct{}

var (
	_ plan.Provisioner = MarginalGain{}
	_ plan.Searcher    = MarginalGain{}
)

// Name identifies the strategy (for reports and CLI flags).
func (MarginalGain) Name() string { return "Optimus-MG" }

// Provision implements plan.Provisioner.
func (g MarginalGain) Provision(ctx context.Context, req plan.Request) (plan.Plan, error) {
	res, err := g.Search(ctx, req)
	return res.Plan, err
}

// Candidates implements plan.Provisioner: every configuration the greedy
// trajectories evaluated, ranked like the engine's candidate list.
func (g MarginalGain) Candidates(ctx context.Context, req plan.Request) ([]plan.Plan, error) {
	res, err := g.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	return res.Ranked, nil
}

// Search implements plan.Searcher: one pass produces both the chosen plan
// and the ranked trajectory.
func (g MarginalGain) Search(ctx context.Context, req plan.Request) (plan.Result, error) {
	nreq, err := req.Normalize()
	if err != nil {
		return plan.Result{}, err
	}
	var ranked []plan.Plan
	var best, effort plan.Plan
	var stats plan.SearchStats
	haveBest, haveEffort := false, false
	for _, t := range nreq.Catalog.Types() {
		if err := ctx.Err(); err != nil {
			return plan.Result{}, err
		}
		final, trajectory, ok := g.climb(ctx, nreq, t)
		if !ok {
			continue
		}
		stats.Types++
		stats.Enumerated += len(trajectory)
		for _, c := range trajectory {
			if c.Feasible {
				stats.Feasible++
			}
		}
		ranked = append(ranked, trajectory...)
		if final.Feasible {
			if !haveBest || final.Cost < best.Cost {
				best, haveBest = final, true
			}
		} else if !haveEffort || final.PredTime < effort.PredTime {
			effort, haveEffort = final, true
		}
	}
	plan.Rank(ranked)
	switch {
	case haveBest:
		return plan.Result{Plan: best, Ranked: ranked, Stats: stats}, nil
	case haveEffort:
		return plan.Result{Plan: effort, Ranked: ranked, Stats: stats}, nil
	}
	return plan.Result{}, fmt.Errorf("baseline: no marginal-gain candidate for %s (goal %.0fs / loss %.3f)",
		nreq.Profile.Workload.Name, req.Goal.TimeSec, req.Goal.LossTarget)
}

// climb runs one greedy trajectory on instance type t. It returns the
// final allocation, every configuration evaluated along the way, and
// whether the type produced any valid configuration at all.
func (g MarginalGain) climb(ctx context.Context, req plan.Request, t cloud.InstanceType) (plan.Plan, []plan.Plan, bool) {
	cur, err := plan.Evaluate(req, t, 1, 1)
	if err != nil {
		return plan.Plan{}, nil, false
	}
	trajectory := []plan.Plan{cur}
	for !cur.Feasible && ctx.Err() == nil {
		next := cur
		moved := false
		// Candidate moves: one more worker (quota permitting), one more
		// PS (Constraint 11 keeps PS <= workers). Both add one docker of
		// the same price, so the larger time reduction is the larger
		// marginal gain per dollar.
		if cur.Workers < req.MaxWorkers {
			if c, err := plan.Evaluate(req, t, cur.Workers+1, cur.PS); err == nil {
				trajectory = append(trajectory, c)
				if c.PredTime < next.PredTime {
					next, moved = c, true
				}
			}
		}
		if cur.PS+1 <= cur.Workers {
			if c, err := plan.Evaluate(req, t, cur.Workers, cur.PS+1); err == nil {
				trajectory = append(trajectory, c)
				if c.PredTime < next.PredTime {
					next, moved = c, true
				}
			}
		}
		if !moved {
			break // no positive marginal gain: the greedy climb stalls
		}
		cur = next
	}
	return cur, trajectory, true
}
