package baseline

import (
	"context"
	"testing"

	"cynthia/internal/cloud"
	"cynthia/internal/model"
	"cynthia/internal/perf"
	"cynthia/internal/plan"
)

func mgRequest(t *testing.T, name string, goal plan.Goal) plan.Request {
	t.Helper()
	w, err := model.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := cloud.DefaultCatalog().Lookup(cloud.M4XLarge)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := cloud.NewCatalog(m4)
	if err != nil {
		t.Fatal(err)
	}
	return plan.Request{Profile: perf.SyntheticProfile(w, m4), Goal: goal, Catalog: cat}
}

func TestMarginalGainMeetsLooseGoal(t *testing.T) {
	req := mgRequest(t, "cifar10 DNN", plan.Goal{TimeSec: 10800, LossTarget: 0.8})
	pl, err := MarginalGain{}.Provision(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Feasible {
		t.Fatalf("loose goal infeasible for marginal gain: %v", pl)
	}
	if pl.Workers < pl.PS || pl.Workers > plan.DefaultMaxWorkers {
		t.Errorf("malformed plan %v", pl)
	}
}

func TestMarginalGainCandidatesRanked(t *testing.T) {
	req := mgRequest(t, "cifar10 DNN", plan.Goal{TimeSec: 7200, LossTarget: 0.8})
	cands, err := MarginalGain{}.Candidates(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("only %d candidates", len(cands))
	}
	seenInfeasible := false
	var prevCost float64
	for i, c := range cands {
		if !c.Feasible {
			seenInfeasible = true
		} else if seenInfeasible {
			t.Fatalf("feasible candidate %d after infeasible ones", i)
		}
		if i > 0 && cands[i-1].Feasible == c.Feasible && c.Cost < prevCost-1e-12 {
			t.Fatalf("cost ordering violated at %d", i)
		}
		prevCost = c.Cost
	}
}

func TestMarginalGainSearchMatchesProvision(t *testing.T) {
	req := mgRequest(t, "cifar10 DNN", plan.Goal{TimeSec: 7200, LossTarget: 0.8})
	ctx := context.Background()
	res, err := MarginalGain{}.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := MarginalGain{}.Provision(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != pl {
		t.Errorf("Search plan %v != Provision plan %v", res.Plan, pl)
	}
	// The chosen plan appears in the ranked trajectory.
	found := false
	for _, c := range res.Ranked {
		if c == pl {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("chosen plan %v not among %d ranked candidates", pl, len(res.Ranked))
	}
}

func TestMarginalGainCancelled(t *testing.T) {
	req := mgRequest(t, "cifar10 DNN", plan.Goal{TimeSec: 7200, LossTarget: 0.8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (MarginalGain{}).Search(ctx, req); err == nil {
		t.Error("cancelled search succeeded")
	}
}
