// Package baseline implements the two comparator performance models of the
// paper's evaluation: Paleo (Qi et al., ICLR 2017) and Optimus (Peng et
// al., EuroSys 2018). Both satisfy perf.Predictor, so the provisioner and
// the experiment harness can swap them in for Cynthia.
//
// The models are implemented with the behaviours the paper attributes to
// them: neither overlaps computation with communication for BSP (so they
// overestimate overlapped BSP training time), and neither models resource
// bottlenecks or contention on the PS (so they underestimate training time
// once the PS saturates).
package baseline

import (
	"fmt"

	"cynthia/internal/cloud"
	"cynthia/internal/model"
	"cynthia/internal/perf"
)

// Paleo is the analytical per-layer performance model: computation time is
// derived from the layer graph's FLOP counts and the device speed, and
// communication time from the parameter volume and the network bandwidth,
// summed without overlap and without any bottleneck model.
type Paleo struct{}

// Name implements perf.Predictor.
func (Paleo) Name() string { return "Paleo" }

// layerGFLOPs returns the per-iteration work derived from the layer graph
// (Paleo's defining feature), falling back to the profiled value for
// workloads without an architecture description.
func layerGFLOPs(p *perf.Profile) float64 {
	w := p.Workload
	if w.Net != nil {
		if _, err := w.Net.Analyze(); err == nil {
			return w.Net.IterGFLOPs(w.Batch)
		}
	}
	return p.WiterGFLOPs
}

// layerParamMB returns gparam from the layer graph when available.
func layerParamMB(p *perf.Profile) float64 {
	if p.Workload.Net != nil {
		if mb := p.Workload.Net.ParamMB(); mb > 0 {
			return mb
		}
	}
	return p.GparamMB
}

// IterTime implements perf.Predictor: tcomp + tcomm, unoverlapped,
// bottleneck-oblivious.
func (Paleo) IterTime(p *perf.Profile, cluster cloud.ClusterSpec) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if cluster.NumWorkers() < 1 || cluster.NumPS() < 1 {
		return 0, fmt.Errorf("baseline: cluster needs >=1 worker and >=1 PS")
	}
	witer := layerGFLOPs(p)
	syncMB := 2 * layerParamMB(p)
	bsup := cluster.TotalPSNetMBps()
	n := cluster.NumWorkers()

	switch p.Workload.Sync {
	case model.ASP:
		sumRate := 0.0
		for _, w := range cluster.Workers {
			titer := witer/w.GFLOPS + syncMB/bsup
			sumRate += 1 / titer
		}
		return float64(n) / sumRate, nil
	default:
		tcomp := witer / (float64(n) * cluster.MinWorkerGFLOPS())
		tcomm := syncMB * float64(n) / bsup
		return tcomp + tcomm, nil
	}
}

// TrainingTime implements perf.Predictor.
func (pl Paleo) TrainingTime(p *perf.Profile, cluster cloud.ClusterSpec, iters int) (float64, error) {
	if iters <= 0 {
		return 0, fmt.Errorf("baseline: iteration count %d must be positive", iters)
	}
	titer, err := pl.IterTime(p, cluster)
	if err != nil {
		return 0, err
	}
	if p.Workload.Sync == model.ASP {
		return float64(iters) * titer / float64(cluster.NumWorkers()), nil
	}
	return float64(iters) * titer, nil
}

var _ perf.Predictor = Paleo{}
