package simtest

// crash_test.go is the durability acceptance suite: the metamorphic
// relation that a golden-scenario run killed mid-flight and restarted
// from its state directory finishes bit-identical to the uninterrupted
// run — same outcome (cost, deadline verdict, history), same durable
// journal bytes. Kill points are derived from each scenario's own
// uninterrupted journal, so every scenario is killed at a segment
// boundary, and scenarios with recoveries are additionally killed
// mid-StatusRecovering and double-killed (crash during the replay of a
// crash).

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"cynthia/internal/obs/journal"
)

// killPoints derives the interesting crash instants from an
// uninterrupted run's journal: the first segment boundary, and — when
// the run recovers — the middle of the first recovery cycle's restart
// overhead (so the kill lands mid-StatusRecovering).
func killPoints(s *Scenario, want *Outcome, events []journal.Event) map[string][]float64 {
	points := map[string][]float64{}
	for _, e := range events {
		if e.Type == journal.SegmentEnd {
			points["segment-boundary"] = []float64{e.At}
			break
		}
	}
	overhead := 30.0 // RecoveryConfig default
	if s.Recovery != nil && s.Recovery.RestartOverheadSec > 0 {
		overhead = s.Recovery.RestartOverheadSec
	}
	// Mid-recovery kills need an actual recovery cycle: with recovery
	// disabled the RecoveryStart event fires but the overhead is never
	// charged, so a kill scheduled inside it would never be reached.
	if want.Recoveries > 0 {
		for _, e := range events {
			if e.Type == journal.RecoveryStart {
				mid := e.At + overhead/2
				points["mid-recovery"] = []float64{mid}
				points["double-crash"] = []float64{mid, mid}
				break
			}
		}
	}
	if len(points) == 0 {
		// No segment ever ran (e.g. planning failed): kill at the first
		// barrier that fires at all.
		points["first-barrier"] = []float64{0}
	}
	return points
}

// withKills returns a copy of the scenario whose fault plan schedules
// the given master kills.
func withKills(s *Scenario, kills []float64) *Scenario {
	c := *s
	var f FaultSpec
	if s.Fault != nil {
		f = *s.Fault
	}
	f.KillMasterAtSec = kills
	c.Fault = &f
	return &c
}

// TestCrashRestartMatchesUninterrupted is the tentpole metamorphic test:
// for every golden scenario and every derived kill point, the
// crashed-and-restarted run must produce the exact Outcome of the
// uninterrupted run and a WAL whose JSONL content is byte-identical to
// the uninterrupted journal.
func TestCrashRestartMatchesUninterrupted(t *testing.T) {
	for _, s := range goldenScenarios(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			want, jrnl, err := RunScenarioDetailed(s)
			if err != nil && want == nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			var wantJSONL bytes.Buffer
			if err := jrnl.WriteJSONL(&wantJSONL); err != nil {
				t.Fatal(err)
			}
			events := jrnl.Events()
			for name, kills := range killPoints(s, want, events) {
				name, kills := name, kills
				t.Run(name, func(t *testing.T) {
					res, err := RunScenarioCrashed(withKills(s, kills), t.TempDir())
					if err != nil {
						t.Fatalf("crashed run: %v", err)
					}
					if res.Crashes != len(kills) {
						t.Errorf("crashes = %d, want %d (kills at %v)", res.Crashes, len(kills), kills)
					}
					if !reflect.DeepEqual(res.Outcome, want) {
						t.Errorf("outcome diverged after crash+restart\n got %+v\nwant %+v", res.Outcome, want)
					}
					if !bytes.Equal(res.WALBytes, wantJSONL.Bytes()) {
						t.Errorf("durable journal diverged after crash+restart: got %d bytes, want %d\n%s",
							len(res.WALBytes), wantJSONL.Len(), firstDiff(res.WALBytes, wantJSONL.Bytes()))
					}
				})
			}
		})
	}
}

// firstDiff renders the first differing line of two JSONL streams.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("first diff at line %d:\n got %s\nwant %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("streams are a prefix of one another (%d vs %d lines)", len(al), len(bl))
}

// TestCrashHarnessRejectsDirtyStateDir pins the first-boot contract: the
// harness refuses to start a "fresh" run over a state directory that
// already holds history.
func TestCrashHarnessRejectsDirtyStateDir(t *testing.T) {
	s := goldenScenarios(t)[0]
	dir := t.TempDir()
	if _, err := RunScenarioCrashed(withKills(s, nil), dir); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := RunScenarioCrashed(withKills(s, nil), dir); err == nil {
		t.Fatal("second run over the same state dir succeeded")
	}
}
