package simtest

// crash.go is the crash-restart harness behind the durability
// metamorphic suite: it runs a scenario with master kills scheduled in
// the fault plan, and on each simulated crash throws the whole control
// plane away and rebuilds it from the state directory — exactly what a
// restarted cmd/master process does — then resumes the in-flight job
// from its last durability barrier. Strict replay mode verifies every
// re-executed event byte-for-byte against the recovered WAL tail, so a
// crashed-and-resumed run must end with the same journal an
// uninterrupted run writes.

import (
	"bytes"
	"errors"
	"fmt"

	"cynthia/internal/cluster"
	"cynthia/internal/cluster/replay"
	"cynthia/internal/obs/journal/wal"
)

// CrashResult is what a crashed-and-resumed scenario run yields beyond
// the usual outcome.
type CrashResult struct {
	Outcome *Outcome
	// Crashes is how many times the master was killed and restarted.
	Crashes int
	// WALBytes is the final durable journal: every canonical JSONL line
	// in the write-ahead log, concatenated.
	WALBytes []byte
}

// maxIncarnations bounds the restart loop: every scheduled kill fires at
// most once, so the process count can never legitimately exceed the kill
// count plus the final clean run.
func maxIncarnations(s *Scenario) int {
	if s.Fault == nil {
		return 1
	}
	return len(s.Fault.KillMasterAtSec) + 1
}

// RunScenarioCrashed replays a scenario whose fault plan schedules
// master kills, restarting the control plane from stateDir after each
// crash. Each incarnation is a completely fresh world (new master,
// provider, controller, journal) rebuilt from the newest snapshot plus
// the WAL tail; nothing survives a crash except the state directory.
// The returned outcome is read from the final incarnation's job table.
func RunScenarioCrashed(s *Scenario, stateDir string) (*CrashResult, error) {
	crashes := 0
	for incarnation := 0; incarnation < maxIncarnations(s)+1; incarnation++ {
		job, err := runIncarnation(s, stateDir, crashes, incarnation == 0)
		if errors.Is(err, cluster.ErrMasterKilled) {
			crashes++
			continue
		}
		if err != nil {
			return nil, err
		}
		// Clean finish: collect the durable journal for comparison.
		records, err := wal.ReadDir(stateDir)
		if err != nil {
			return nil, err
		}
		return &CrashResult{
			Outcome:  outcomeOf(job),
			Crashes:  crashes,
			WALBytes: bytes.Join(records, nil),
		}, nil
	}
	return nil, fmt.Errorf("scenario %s: master still crashing after %d incarnations", s.Name, maxIncarnations(s)+1)
}

// runIncarnation boots one master process lifetime: open the state
// directory, rebuild the recovered world, resume or submit, and run
// until the job finishes or the next scheduled kill fires. It returns
// cluster.ErrMasterKilled when this incarnation crashed.
func runIncarnation(s *Scenario, stateDir string, crashes int, first bool) (*cluster.Job, error) {
	mgr, err := replay.Open(stateDir, replay.Options{Mode: replay.ModeStrict, SnapshotEvery: 2})
	if err != nil {
		return nil, err
	}
	defer mgr.Close()
	world, err := buildWorld(s, mgr)
	if err != nil {
		return nil, err
	}
	world.ctl.Durability = mgr
	mgr.Attach(world.ctl, world.master, world.provider, world.jrnl)

	if first {
		if mgr.HasState() {
			return nil, fmt.Errorf("scenario %s: state dir %s not empty on first boot", s.Name, stateDir)
		}
		job, err := world.ctl.Submit(world.workload, s.goal())
		if job == nil {
			return nil, err
		}
		if errors.Is(err, cluster.ErrMasterKilled) {
			return job, err
		}
		// Any other error is a terminal job outcome (StatusFailed), not a
		// harness failure — the golden Outcome records it.
		return job, mgr.VerifyError()
	}

	resume, queued, err := mgr.Rebuild()
	if err != nil {
		return nil, err
	}
	// The snapshot predates the crash, so its kill bookkeeping may not
	// include the kill that ended the previous incarnation. The harness
	// knows the true crash count — without this override the same kill
	// would re-fire at the first barrier and the master would crash-loop.
	world.provider.SetMasterKillsTaken(crashes)
	if snap := mgr.Snapshot(); snap != nil {
		*world.now = snap.Provider.ClockSec
	}
	// Scenario runs submit synchronously, so a crash can never strand a
	// job at the admission barrier here (that path is covered by the
	// cluster-level durability tests over Enqueue/Requeue).
	if len(queued) != 0 {
		return nil, fmt.Errorf("scenario %s: unexpected queued jobs after restart: %v", s.Name, queued)
	}
	var last *cluster.Job
	for _, id := range resume {
		job, err := world.ctl.ResumeJob(id)
		if errors.Is(err, cluster.ErrMasterKilled) {
			return job, err
		}
		if job == nil {
			return nil, err
		}
		last = job // a non-kill error failed the job; that IS the outcome
	}
	if last == nil {
		// Nothing was in flight: the crash hit after the terminal barrier.
		jobs := world.ctl.Jobs()
		if len(jobs) == 0 {
			return nil, fmt.Errorf("scenario %s: restart recovered no jobs", s.Name)
		}
		last = &jobs[len(jobs)-1]
	}
	return last, mgr.VerifyError()
}
