// Package simtest is the deterministic property/metamorphic test harness
// for the provisioning stack. It provides three things:
//
//   - Seeded random generators (gen.go) for instance catalogs, workloads,
//     provisioning requests, training clusters, and cloud.FaultPlans.
//     Every generator draws only from the *rand.Rand it is handed, so a
//     fixed seed reproduces the exact case — failures are replayable and
//     the suite is deterministic under -race and -shuffle.
//
//   - Invariant checkers (invariants.go) that audit any search result or
//     simulation run against the guarantees the paper states: the chosen
//     plan is the cheapest first-feasible candidate Algorithm 1
//     enumerates, the Theorem 4.1 bounds contain the chosen configuration,
//     the Eq. 6-7 utilizations stay in (0, 1], BSP's overlapped iteration
//     time max(tcomp, tcomm) never exceeds the sequential tcomp + tcomm,
//     and every reported cost matches Eq. 8.
//
//   - A golden end-to-end scenario corpus (scenario.go and
//     testdata/scenarios/*.json) replaying full planner -> controller ->
//     ddnnsim runs, including fault schedules, bit-for-bit. Regenerate
//     expectations with `go test ./internal/simtest -run Golden -update`.
//
// The package holds no test state of its own; the _test files in this
// directory wire the generators and checkers together, and other packages
// may import simtest for the same building blocks.
package simtest

import (
	"fmt"
	"math"
	"math/rand"

	"cynthia/internal/cloud"
	"cynthia/internal/model"
	"cynthia/internal/perf"
	"cynthia/internal/plan"
)

// NewRand returns the deterministic random source every generator in this
// package consumes. Tests derive one per case from a fixed base seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// uniform draws from [lo, hi).
func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// GenInstanceType draws one plausible catalog entry. The ranges bracket
// the paper's four EC2 families (1.58-3.0 GFLOPS per docker, 62-110 MB/s,
// $0.20-0.35/h) with room on both sides, so generated catalogs exercise
// the planner beyond the calibrated defaults.
func GenInstanceType(rng *rand.Rand, name string) cloud.InstanceType {
	return cloud.InstanceType{
		Name:         name,
		CPUModel:     "generated",
		GFLOPS:       uniform(rng, 1.0, 6.0),
		NetMBps:      uniform(rng, 40, 220),
		PricePerHour: uniform(rng, 0.08, 0.60),
		VCPUs:        4,
		MemoryGiB:    16,
	}
}

// GenCatalog draws a catalog of 2-6 generated instance types.
func GenCatalog(rng *rand.Rand) *cloud.Catalog {
	n := 2 + rng.Intn(5)
	types := make([]cloud.InstanceType, n)
	for i := range types {
		types[i] = GenInstanceType(rng, fmt.Sprintf("gen%d.xlarge", i))
	}
	c, err := cloud.NewCatalog(types...)
	if err != nil {
		panic(err) // generated attributes are positive by construction
	}
	return c
}

// GenWorkload draws a synthetic DDNN workload: per-iteration work, model
// size, PS overhead, sync mode, and Eq. 1 loss coefficients, in ranges
// bracketing the paper's Table 1 (mnist DNN's 0.8 GFLOPs/iter up to
// VGG-19's ~80 MB of parameters).
func GenWorkload(rng *rand.Rand) *model.Workload {
	sync := model.BSP
	if rng.Intn(2) == 1 {
		sync = model.ASP
	}
	return &model.Workload{
		Name:        fmt.Sprintf("gen-%s", sync),
		Batch:       128,
		Iterations:  1000,
		Sync:        sync,
		Dataset:     "synthetic",
		WiterGFLOPs: uniform(rng, 0.5, 30),
		GparamMB:    uniform(rng, 1, 60),
		PSCPUPerMB:  uniform(rng, 0.005, 0.05),
		Loss: model.LossParams{
			Beta0: uniform(rng, 30, 1200),
			Beta1: uniform(rng, 0.05, 0.5),
		},
	}
}

// GenGoal draws a training goal for the workload: a loss target safely
// above the Eq. 1 asymptote and a deadline spanning comfortably loose to
// outright impossible, so the corpus exercises both the feasible search
// and the best-effort fallback.
func GenGoal(rng *rand.Rand, w *model.Workload) plan.Goal {
	return plan.Goal{
		// ~600 s .. ~45000 s, log-uniform.
		TimeSec:    600 * math.Exp(uniform(rng, 0, 4.3)),
		LossTarget: w.Loss.Beta1 + uniform(rng, 0.03, 0.6),
	}
}

// GenRequest draws a full provisioning request: generated workload,
// catalog, goal, and occasional non-default knobs (tight worker quota,
// disabled escalation or headroom). The profile is the noise-free
// synthetic profile against the catalog's first type, mirroring how the
// controller profiles on a fixed baseline.
func GenRequest(rng *rand.Rand) plan.Request {
	catalog := GenCatalog(rng)
	w := GenWorkload(rng)
	base := catalog.Types()[0]
	req := plan.Request{
		Profile: perf.SyntheticProfile(w, base),
		Goal:    GenGoal(rng, w),
		Catalog: catalog,
	}
	if rng.Intn(4) == 0 {
		req.MaxWorkers = 4 + rng.Intn(24)
	}
	if rng.Intn(4) == 0 {
		req.MaxPSEscalations = plan.NoEscalation
	}
	if rng.Intn(4) == 0 {
		req.Headroom = plan.NoHeadroom
	}
	return req
}

// GenCluster draws a training cluster over the catalog: 1-12 workers and
// 1-3 PS dockers, homogeneous or (for BSP straggler coverage) mixing two
// types.
func GenCluster(rng *rand.Rand, catalog *cloud.Catalog) cloud.ClusterSpec {
	types := catalog.Types()
	nwk := 1 + rng.Intn(12)
	nps := 1 + rng.Intn(3)
	t := types[rng.Intn(len(types))]
	if len(types) > 1 && rng.Intn(3) == 0 {
		slow := types[rng.Intn(len(types))]
		return cloud.Heterogeneous(t, slow, nwk, nps)
	}
	return cloud.Homogeneous(t, nwk, nps)
}

// GenFaultPlan draws a deterministic fault-injection plan: transient
// launch failures, launch delays, and either Bernoulli or targeted spot
// preemptions, all derived from the plan's own seed.
func GenFaultPlan(rng *rand.Rand) cloud.FaultPlan {
	fp := cloud.FaultPlan{
		Seed:                    rng.Int63n(1 << 30),
		MaxConsecutiveTransient: 1 + rng.Intn(3),
	}
	if rng.Intn(2) == 0 {
		fp.TransientRate = uniform(rng, 0.1, 0.8)
	}
	if rng.Intn(2) == 0 {
		fp.LaunchDelayMaxSec = uniform(rng, 1, 120)
	}
	switch rng.Intn(3) {
	case 0:
		fp.PreemptRate = uniform(rng, 0.1, 0.9)
		fp.PreemptMinSec = uniform(rng, 10, 500)
		fp.PreemptMaxSec = fp.PreemptMinSec + uniform(rng, 0, 2000)
	case 1:
		fp.PreemptAtSec = uniform(rng, 10, 2000)
		fp.PreemptNth = rng.Intn(4)
	}
	return fp
}
