package simtest

import (
	"encoding/json"
	"flag"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden scenario expectations in place")

// TestGoldenScenarios replays every scenario under testdata/scenarios
// through the full planner -> controller -> ddnnsim pipeline and compares
// the outcome to the stored expectation with reflect.DeepEqual — floats
// included, bit-for-bit, since encoding/json round-trips float64 exactly.
// After an intentional behaviour change, regenerate with:
//
//	go test ./internal/simtest -run Golden -update
func TestGoldenScenarios(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 8 {
		t.Fatalf("golden corpus has %d scenarios, want at least 8", len(paths))
	}
	faulted := 0
	for _, path := range paths {
		s, err := LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		if s.Fault != nil {
			faulted++
		}
		t.Run(s.Name, func(t *testing.T) {
			out, err := RunScenario(s)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if *update {
				s.Expect = out
				if err := s.Save(path); err != nil {
					t.Fatal(err)
				}
				return
			}
			if s.Expect == nil {
				t.Fatalf("%s has no expectation; generate one with -update", path)
			}
			if !reflect.DeepEqual(out, s.Expect) {
				got, _ := json.MarshalIndent(out, "", "  ")
				want, _ := json.MarshalIndent(s.Expect, "", "  ")
				t.Errorf("outcome diverged from golden file\n got: %s\nwant: %s", got, want)
			}
		})
	}
	if faulted < 2 {
		t.Errorf("golden corpus has %d scenarios with fault schedules, want at least 2", faulted)
	}
}
