package simtest

// The golden end-to-end corpus: JSON scenario files under
// testdata/scenarios describe one job each — workload, goal, provisioner,
// fault schedule, recovery knobs — and RunScenario replays the full
// planner -> controller -> ddnnsim pipeline on a simulated provider
// clock. Every float in the Outcome round-trips through JSON bit-for-bit
// (encoding/json emits the shortest representation that parses back to
// the same float64), so golden comparisons are exact, not approximate.
// Regenerate expectations with:
//
//	go test ./internal/simtest -run Golden -update

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"cynthia/internal/baseline"
	"cynthia/internal/cloud"
	"cynthia/internal/cloud/pricing"
	"cynthia/internal/cluster"
	"cynthia/internal/model"
	"cynthia/internal/obs/journal"
	"cynthia/internal/plan"
)

// FaultSpec mirrors cloud.FaultPlan with JSON tags so scenario files can
// schedule provider faults declaratively.
type FaultSpec struct {
	Seed                    int64   `json:"seed,omitempty"`
	TransientRate           float64 `json:"transient_rate,omitempty"`
	MaxConsecutiveTransient int     `json:"max_consecutive_transient,omitempty"`
	LaunchDelayMaxSec       float64 `json:"launch_delay_max_sec,omitempty"`
	PreemptRate             float64 `json:"preempt_rate,omitempty"`
	PreemptMinSec           float64 `json:"preempt_min_sec,omitempty"`
	PreemptMaxSec           float64 `json:"preempt_max_sec,omitempty"`
	PreemptAtSec            float64 `json:"preempt_at_sec,omitempty"`
	PreemptNth              int     `json:"preempt_nth,omitempty"`
	// KillMasterAtSec schedules master crashes: each entry kills the
	// control plane at the first durability barrier at or after that
	// simulated time (requires the crash-restart harness, RunScenarioCrashed).
	KillMasterAtSec []float64 `json:"kill_master_at_sec,omitempty"`
}

func (f *FaultSpec) plan() cloud.FaultPlan {
	return cloud.FaultPlan{
		Seed:                    f.Seed,
		TransientRate:           f.TransientRate,
		MaxConsecutiveTransient: f.MaxConsecutiveTransient,
		LaunchDelayMaxSec:       f.LaunchDelayMaxSec,
		PreemptRate:             f.PreemptRate,
		PreemptMinSec:           f.PreemptMinSec,
		PreemptMaxSec:           f.PreemptMaxSec,
		PreemptAtSec:            f.PreemptAtSec,
		PreemptNth:              f.PreemptNth,
		KillMasterAtSec:         append([]float64(nil), f.KillMasterAtSec...),
	}
}

// SpotSpec attaches a spot market to the scenario's provider and turns
// on the controller's continuous optimizer (see cluster.ElasticConfig).
type SpotSpec struct {
	// Strategy is the bidding posture: "aggressive", "balanced", or
	// "conservative" (default balanced).
	Strategy string `json:"strategy,omitempty"`
	// TraceFile names a price-trace JSON file (pricing.TraceSet),
	// resolved relative to the test working directory like the scenario
	// files themselves. Ignored when Traces is set inline.
	TraceFile string `json:"trace_file,omitempty"`
	// Traces embeds the price traces directly in the scenario, keeping
	// the golden file self-contained.
	Traces *pricing.TraceSet `json:"traces,omitempty"`
	// ScaleOverheadSec and MinGainFrac override the elastic defaults.
	ScaleOverheadSec float64 `json:"scale_overhead_sec,omitempty"`
	MinGainFrac      float64 `json:"min_gain_frac,omitempty"`
}

// traceSet resolves the spec's price traces, inline or from file.
func (sp *SpotSpec) traceSet() (*pricing.TraceSet, error) {
	if sp.Traces != nil {
		return sp.Traces, nil
	}
	if sp.TraceFile != "" {
		return pricing.LoadTraceSet(sp.TraceFile)
	}
	return nil, fmt.Errorf("spot spec needs traces or trace_file")
}

// RecoverySpec selects the controller recovery knobs a scenario overrides.
type RecoverySpec struct {
	Disabled           bool    `json:"disabled,omitempty"`
	MaxRecoveries      int     `json:"max_recoveries,omitempty"`
	CheckpointEvery    int     `json:"checkpoint_every,omitempty"`
	RestartOverheadSec float64 `json:"restart_overhead_sec,omitempty"`
}

// Outcome is everything a scenario replay asserts on: the plan the search
// chose, the simulated training outcome, and the job's lifecycle history.
type Outcome struct {
	Status         string   `json:"status"`
	Error          string   `json:"error,omitempty"`
	PlanType       string   `json:"plan_type,omitempty"`
	Workers        int      `json:"workers,omitempty"`
	PS             int      `json:"ps,omitempty"`
	Iterations     int      `json:"iterations,omitempty"`
	PredTimeSec    float64  `json:"pred_time_sec,omitempty"`
	PredCostUSD    float64  `json:"pred_cost_usd,omitempty"`
	Feasible       bool     `json:"feasible"`
	TrainingTime   float64  `json:"training_time,omitempty"`
	FinalLoss      float64  `json:"final_loss,omitempty"`
	CostUSD        float64  `json:"cost_usd,omitempty"`
	Recoveries     int      `json:"recoveries,omitempty"`
	LostIterations int      `json:"lost_iterations,omitempty"`
	ElasticScales  int      `json:"elastic_scales,omitempty"`
	History        []string `json:"history"`
}

// Scenario is one golden end-to-end case, loaded from
// testdata/scenarios/<name>.json.
type Scenario struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Workload    string  `json:"workload"`
	Sync        string  `json:"sync,omitempty"`       // "bsp"/"asp" override
	Iterations  int     `json:"iterations,omitempty"` // iteration override
	GoalTimeSec float64 `json:"goal_time_sec"`
	LossTarget  float64 `json:"loss_target"`
	Seed        int64   `json:"seed"`
	Provisioner string  `json:"provisioner,omitempty"` // "", "cynthia", "marginalgain"

	Fault    *FaultSpec    `json:"fault,omitempty"`
	Recovery *RecoverySpec `json:"recovery,omitempty"`
	Spot     *SpotSpec     `json:"spot,omitempty"`

	// Expect is the golden outcome; -update rewrites it.
	Expect *Outcome `json:"expect,omitempty"`
}

// LoadScenario reads one scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := new(Scenario)
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

// SaveScenario writes the scenario back (used by -update).
func (s *Scenario) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunScenario replays the scenario through a fresh master + controller on
// a manually driven provider clock — the same wiring the robustness
// experiment uses — and returns the observed outcome. The replay is fully
// deterministic: the simulator seed, the fault plan's seed, and the
// provider clock all derive from the scenario file.
func RunScenario(s *Scenario) (*Outcome, error) {
	out, _, err := RunScenarioDetailed(s)
	return out, err
}

// scenarioWorld is one fully wired control plane for a scenario replay:
// master, provider on a manually driven clock, controller, deterministic
// journal. The crash-restart harness builds a fresh one per master
// incarnation.
type scenarioWorld struct {
	workload *model.Workload
	master   *cluster.Master
	provider *cloud.Provider
	ctl      *cluster.Controller
	jrnl     *journal.Journal
	now      *float64
}

// goal returns the scenario's training goal.
func (s *Scenario) goal() plan.Goal {
	return plan.Goal{TimeSec: s.GoalTimeSec, LossTarget: s.LossTarget}
}

// buildWorld wires the scenario's control plane. A non-nil sink receives
// every journal event in canonical JSONL (the durable WAL path);
// RunScenario passes nil and keeps the journal in memory only.
func buildWorld(s *Scenario, sink io.Writer) (*scenarioWorld, error) {
	w, err := model.WorkloadByName(s.Workload)
	if err != nil {
		return nil, err
	}
	switch s.Sync {
	case "":
	case "bsp":
		w = w.WithSync(model.BSP)
	case "asp":
		w = w.WithSync(model.ASP)
	default:
		return nil, fmt.Errorf("scenario %s: unknown sync mode %q", s.Name, s.Sync)
	}
	if s.Iterations > 0 {
		w = w.WithIterations(s.Iterations)
	}

	master, err := cluster.NewMaster()
	if err != nil {
		return nil, err
	}
	now := new(float64)
	provider := cloud.NewProvider(cloud.DefaultCatalog(), func() float64 { return *now })
	// Deterministic flight recorder: timestamps come from the simulated
	// provider clock only, never the wall clock, so the canonical JSONL is
	// reproducible byte for byte. The capacity comfortably holds a full
	// replay, so nothing wraps out of the ring.
	jopts := []journal.Option{journal.Deterministic()}
	if sink != nil {
		jopts = append(jopts, journal.WithSink(sink))
	}
	jrnl := journal.New(16384, jopts...)
	master.SetJournal(jrnl, func() float64 { return *now })
	provider.SetJournal(jrnl)
	if s.Fault != nil {
		provider.SetFaultPlan(s.Fault.plan())
	}
	ctl := cluster.NewController(master, provider, nil, "")
	ctl.AdvanceClock = func(dt float64) { *now += dt }
	ctl.SimSeed = s.Seed
	ctl.Recovery.Sleep = func(time.Duration) {}
	if s.Recovery != nil {
		ctl.Recovery.Disabled = s.Recovery.Disabled
		ctl.Recovery.MaxRecoveries = s.Recovery.MaxRecoveries
		ctl.Recovery.CheckpointEvery = s.Recovery.CheckpointEvery
		ctl.Recovery.RestartOverheadSec = s.Recovery.RestartOverheadSec
	}
	switch s.Provisioner {
	case "", "cynthia":
	case "marginalgain":
		ctl.UseProvisioner(baseline.MarginalGain{})
	default:
		return nil, fmt.Errorf("scenario %s: unknown provisioner %q", s.Name, s.Provisioner)
	}
	if s.Spot != nil {
		set, err := s.Spot.traceSet()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %v", s.Name, err)
		}
		strat := pricing.Balanced
		if s.Spot.Strategy != "" {
			if strat, err = pricing.ParseStrategy(s.Spot.Strategy); err != nil {
				return nil, fmt.Errorf("scenario %s: %v", s.Name, err)
			}
		}
		m, err := cloud.NewMarket(provider.Catalog(), set)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %v", s.Name, err)
		}
		provider.SetMarket(m)
		ctl.Elastic = cluster.ElasticConfig{
			Enabled:          true,
			Market:           m,
			Strategy:         strat,
			ScaleOverheadSec: s.Spot.ScaleOverheadSec,
			MinGainFrac:      s.Spot.MinGainFrac,
		}
	}
	return &scenarioWorld{workload: w, master: master, provider: provider, ctl: ctl, jrnl: jrnl, now: now}, nil
}

// RunScenarioDetailed is RunScenario plus the run's flight-recorder
// journal. The journal runs in deterministic mode (no wall clock) on the
// simulated provider clock, so two replays of the same scenario produce
// byte-identical canonical JSONL.
func RunScenarioDetailed(s *Scenario) (*Outcome, *journal.Journal, error) {
	world, err := buildWorld(s, nil)
	if err != nil {
		return nil, nil, err
	}
	job, err := world.ctl.Submit(world.workload, s.goal())
	if job == nil {
		return nil, nil, err
	}
	return outcomeOf(job), world.jrnl, nil
}

// outcomeOf converts a finished job into the golden Outcome shape.
func outcomeOf(job *cluster.Job) *Outcome {
	out := &Outcome{
		Status:         string(job.Status),
		Error:          job.Err,
		PlanType:       job.Plan.Type.Name,
		Workers:        job.Plan.Workers,
		PS:             job.Plan.PS,
		Iterations:     job.Plan.Iterations,
		PredTimeSec:    job.Plan.PredTime,
		PredCostUSD:    job.Plan.Cost,
		Feasible:       job.Plan.Feasible,
		TrainingTime:   job.TrainingTime,
		FinalLoss:      job.FinalLoss,
		CostUSD:        job.Cost,
		Recoveries:     job.Recoveries,
		LostIterations: job.LostIterations,
		ElasticScales:  job.ElasticScales,
	}
	for _, st := range job.History {
		out.History = append(out.History, string(st))
	}
	return out
}
