package simtest

import (
	"bytes"
	"path/filepath"
	"testing"

	"cynthia/internal/obs/journal"
)

// goldenScenarios loads every scenario in the corpus.
func goldenScenarios(t *testing.T) []*Scenario {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Scenario, 0, len(paths))
	for _, path := range paths {
		s, err := LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// TestGoldenJournalByteIdentical replays every golden scenario twice and
// requires the flight recorder's canonical JSONL to match byte for byte.
// This is the determinism contract the future write-ahead log builds on:
// no wall-clock timestamps, no map iteration order, no goroutine
// interleaving may leak into the encoding.
func TestGoldenJournalByteIdentical(t *testing.T) {
	for _, s := range goldenScenarios(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			var a, b bytes.Buffer
			_, j1, err := RunScenarioDetailed(s)
			if err != nil {
				t.Fatalf("first replay: %v", err)
			}
			if err := j1.WriteJSONL(&a); err != nil {
				t.Fatal(err)
			}
			_, j2, err := RunScenarioDetailed(s)
			if err != nil {
				t.Fatalf("second replay: %v", err)
			}
			if err := j2.WriteJSONL(&b); err != nil {
				t.Fatal(err)
			}
			if a.Len() == 0 {
				t.Fatal("replay recorded no journal events")
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("journal diverged between identical replays\n first: %d bytes\nsecond: %d bytes", a.Len(), b.Len())
			}
		})
	}
}

// firstOf returns the sequence number of the first event of the given
// type, or 0 if none exists.
func firstOf(events []journal.Event, typ journal.Type) uint64 {
	for _, e := range events {
		if e.Type == typ {
			return e.Seq
		}
	}
	return 0
}

func fieldValue(e journal.Event, key string) (string, bool) {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return "", false
}

// TestGoldenTimelineCausalChain checks that for every golden scenario the
// journal reconstructs the complete causal narrative: submission, the
// plan decision with its search-space accounting, segment transitions,
// preemption and recovery when the fault schedule fires, and a terminal
// event — all in causal order and correlated by one trace ID.
func TestGoldenTimelineCausalChain(t *testing.T) {
	for _, s := range goldenScenarios(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			out, jrnl, err := RunScenarioDetailed(s)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			events := jrnl.JobEvents("job-1")
			if len(events) == 0 {
				t.Fatal("no journal events correlated with job-1")
			}

			submitted := firstOf(events, journal.JobSubmitted)
			chosen := firstOf(events, journal.PlanChosen)
			segStart := firstOf(events, journal.SegmentStart)
			segEnd := firstOf(events, journal.SegmentEnd)
			if submitted == 0 {
				t.Error("missing job.submitted")
			}
			if chosen == 0 {
				t.Fatal("missing job.plan.chosen")
			}
			if segStart == 0 || segEnd == 0 {
				t.Error("missing segment transitions")
			}
			if !(submitted < chosen && chosen < segStart && segStart < segEnd) {
				t.Errorf("causal order violated: submitted=%d chosen=%d segStart=%d segEnd=%d",
					submitted, chosen, segStart, segEnd)
			}

			// The chosen plan records the Theorem 4.1 search-space
			// accounting: how many candidates were enumerated and how
			// many the bounds pruned away.
			for _, e := range events {
				if e.Type != journal.PlanChosen {
					continue
				}
				if v, ok := fieldValue(e, "enumerated"); !ok || v == "0" {
					t.Errorf("plan.chosen missing enumerated count (fields %v)", e.Fields)
				}
				if _, ok := fieldValue(e, "pruned"); !ok {
					t.Errorf("plan.chosen missing pruned count (fields %v)", e.Fields)
				}
				break
			}

			// Terminal state matches the outcome and closes the chain.
			var terminal journal.Type = journal.JobFinished
			if out.Status == "failed" {
				terminal = journal.JobFailed
			}
			term := firstOf(events, terminal)
			if term == 0 {
				t.Fatalf("missing terminal event %s for status %s", terminal, out.Status)
			}
			if term < segEnd {
				t.Errorf("terminal event %s (seq %d) precedes last segment end (seq %d)", terminal, term, segEnd)
			}

			// Faulted-and-recovered scenarios must show the preemption
			// and the recovery bracket between the segments.
			if out.Recoveries > 0 {
				preempt := firstOf(events, journal.InstancePreempted)
				recStart := firstOf(events, journal.RecoveryStart)
				recDone := firstOf(events, journal.RecoveryDone)
				if preempt == 0 || recStart == 0 || recDone == 0 {
					t.Fatalf("recovered scenario missing fault chain: preempted=%d recovery.start=%d recovery.done=%d",
						preempt, recStart, recDone)
				}
				if !(preempt < recStart && recStart < recDone && recDone < term) {
					t.Errorf("fault chain out of order: preempted=%d start=%d done=%d terminal=%d",
						preempt, recStart, recDone, term)
				}
			}

			// One trace ID correlates the whole controller-side chain.
			trace := ""
			for _, e := range events {
				if e.Trace == "" {
					continue // master bookkeeping events carry only the job ID
				}
				if trace == "" {
					trace = e.Trace
				} else if e.Trace != trace {
					t.Fatalf("trace IDs diverge: %q vs %q", trace, e.Trace)
				}
			}
			if trace == "" {
				t.Error("no event carries a trace ID")
			}

			// The timeline renders every correlated event as one step.
			tl := journal.BuildTimeline("job-1", events)
			if len(tl.Steps) != len(events) {
				t.Errorf("timeline has %d steps for %d events", len(tl.Steps), len(events))
			}
			if tl.Trace != trace {
				t.Errorf("timeline trace %q, want %q", tl.Trace, trace)
			}
		})
	}
}
