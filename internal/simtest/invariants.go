package simtest

// Invariant checkers: every guarantee the paper states about a search
// result or a simulated run, expressed as a function returning an error
// describing the first violation. Property tests, metamorphic tests, and
// the golden replay all funnel through these, so a guarantee is written
// down exactly once.

import (
	"context"
	"fmt"
	"math"

	"cynthia/internal/cloud"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/model"
	"cynthia/internal/perf"
	"cynthia/internal/plan"
)

// relTol is the relative tolerance for comparing independently recomputed
// floating-point quantities (costs, times). Checks against values that
// should be bit-identical use exact equality instead.
const relTol = 1e-9

func closeRel(a, b float64) bool {
	return math.Abs(a-b) <= relTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// CheckSearch runs one serial search for the request and audits the full
// Algorithm 1 contract against an independent reconstruction from the
// exported candidate stream (plan.EnumerateConfigs) and the exported
// single-candidate evaluator (plan.Evaluate):
//
//   - the chosen plan is the cheapest across instance types of each
//     type's first feasible candidate in scan order (Algorithm 1's early
//     break + cross-type min), bit-identical in every field;
//   - the Theorem 4.1 bounds contain the chosen (workers, ps)
//     configuration — it appears in the enumerated stream;
//   - the ranked candidate list is ordered feasible-first then by
//     ascending cost, contains the chosen plan, and agrees with it on
//     feasibility;
//   - the Eq. 6-7 worker utilization of the chosen cluster lies in
//     (0, 1];
//   - the plan's Cost matches Eq. 8 recomputed from its own fields, and
//     BSP's overlapped iteration time respects max(tcomp, tcomm) <=
//     tcomp + tcomm.
//
// It returns the search result for further use, or an error describing
// the first violated invariant. A request with no evaluable candidates at
// all (the engine's error path) is verified to truly have none.
func CheckSearch(req plan.Request) (plan.Result, error) {
	serial := &plan.Engine{Parallelism: 1}
	res, serr := serial.Search(context.Background(), req)

	nr, err := req.Normalize()
	if err != nil {
		if serr == nil {
			return res, fmt.Errorf("search accepted a request Normalize rejects: %v", err)
		}
		return res, nil // invalid request rejected everywhere: consistent
	}

	// Reconstruct Algorithm 1 independently: per type, walk the exact
	// candidate stream and record the first feasible configuration and
	// the fastest infeasible one.
	var best plan.Plan
	haveBest := false
	enumerated := 0
	for _, t := range nr.Catalog.Types() {
		firstFound := false
		err := plan.EnumerateConfigs(nr, t, func(n, nps int) bool {
			if firstFound {
				return false // scan of this type is decided
			}
			cand, err := plan.Evaluate(nr, t, n, nps)
			if err != nil {
				return true
			}
			enumerated++
			if cand.Feasible {
				firstFound = true
				if !haveBest || cand.Cost < best.Cost {
					best, haveBest = cand, true
				}
				return false
			}
			return true
		})
		if err != nil {
			return res, fmt.Errorf("enumerating %s: %v", t.Name, err)
		}
	}

	if serr != nil {
		if enumerated > 0 || haveBest {
			return res, fmt.Errorf("search failed (%v) but %d candidates were evaluable", serr, enumerated)
		}
		return res, nil // genuinely empty search space
	}
	pl := res.Plan

	// Cheapest first-feasible, bit-for-bit.
	if haveBest != pl.Feasible {
		return res, fmt.Errorf("feasibility mismatch: reconstruction=%v, engine plan=%+v", haveBest, pl)
	}
	if haveBest && pl != best {
		return res, fmt.Errorf("plan is not the cheapest first-feasible candidate:\n engine: %+v\n oracle: %+v", pl, best)
	}

	// Theorem 4.1 bounds contain the chosen configuration.
	if pl.Feasible {
		contained := false
		if err := plan.EnumerateConfigs(nr, pl.Type, func(n, nps int) bool {
			if n == pl.Workers && nps == pl.PS {
				contained = true
				return false
			}
			return true
		}); err != nil {
			return res, err
		}
		if !contained {
			return res, fmt.Errorf("chosen config %dx%s+%dPS outside the Theorem 4.1 enumeration", pl.Workers, pl.Type.Name, pl.PS)
		}
	}

	// Ranked ordering and membership.
	if err := CheckRanked(res); err != nil {
		return res, err
	}

	// Eq. 6-7 utilization, Eq. 8 cost, Eq. 3 overlap.
	if err := CheckPlanModel(nr, pl); err != nil {
		return res, err
	}
	for _, cand := range res.Ranked {
		if !closeRel(cand.Cost, plan.Cost(cand.Type, cand.Workers, cand.PS, cand.PredTime)) {
			return res, fmt.Errorf("ranked candidate cost %.9f violates Eq. 8: %+v", cand.Cost, cand)
		}
	}
	return res, nil
}

// CheckRanked verifies the ranked candidate list's contract: ordered
// feasible-first then ascending cost within each group, containing the
// chosen plan, and agreeing with it on feasibility.
func CheckRanked(res plan.Result) error {
	seenInfeasible := false
	prevCost := math.Inf(-1)
	found := false
	for i, c := range res.Ranked {
		if !c.Feasible {
			if !seenInfeasible {
				seenInfeasible = true
				prevCost = math.Inf(-1)
			}
		} else if seenInfeasible {
			return fmt.Errorf("ranked[%d] feasible after infeasible candidates", i)
		}
		if c.Cost < prevCost-relTol*(1+prevCost) {
			return fmt.Errorf("ranked[%d] cost %.9f below predecessor %.9f", i, c.Cost, prevCost)
		}
		prevCost = c.Cost
		if c == res.Plan {
			found = true
		}
	}
	if len(res.Ranked) == 0 {
		return nil
	}
	if !found {
		return fmt.Errorf("chosen plan %+v not among %d ranked candidates", res.Plan, len(res.Ranked))
	}
	if res.Ranked[0].Feasible != res.Plan.Feasible {
		return fmt.Errorf("ranked[0].Feasible=%v disagrees with plan.Feasible=%v",
			res.Ranked[0].Feasible, res.Plan.Feasible)
	}
	return nil
}

// CheckPlanModel audits the chosen plan against the performance model:
// Eq. 6-7 worker utilization in (0, 1], Eq. 8 cost recomputed from the
// plan's own fields, and — for BSP — the Eq. 3 overlap bound
// max(tcomp, tcomm) <= tcomp + tcomm, with tcomp and tcomm recomputed
// from the profile via Eq. 4-5.
func CheckPlanModel(req plan.Request, pl plan.Plan) error {
	p := req.Profile
	cluster := cloud.Homogeneous(pl.Type, pl.Workers, pl.PS)
	u := perf.Cynthia{}.WorkerUtilization(p, cluster)
	if !(u > 0 && u <= 1+relTol) {
		return fmt.Errorf("Eq. 6-7 worker utilization %v outside (0,1] for %+v", u, pl)
	}
	if !closeRel(pl.Cost, plan.Cost(pl.Type, pl.Workers, pl.PS, pl.PredTime)) {
		return fmt.Errorf("plan cost %.9f violates Eq. 8 (price %.3f x %d dockers x %.3fs)",
			pl.Cost, pl.Type.PricePerHour, pl.Workers+pl.PS, pl.PredTime)
	}
	if p.Workload.Sync != model.BSP {
		return nil
	}
	titer, err := perf.Cynthia{}.IterTime(p, cluster)
	if err != nil {
		return err
	}
	// Sequential oracle: tcomp per Eq. 4, tcomm per Eq. 5 with the
	// effective PS bandwidth capped by what the PS CPUs can process.
	n := float64(cluster.NumWorkers())
	tcomp := p.WiterGFLOPs / (n * cluster.MinWorkerGFLOPS() * u)
	beff := cluster.TotalPSNetMBps()
	if p.CprofGFLOPS > 0 {
		beff = math.Min(beff, cluster.TotalPSGFLOPS()*p.BprofMBps/p.CprofGFLOPS)
	}
	tcomm := 2 * p.GparamMB * n / beff
	if titer > tcomp+tcomm+relTol*(1+tcomp+tcomm) {
		return fmt.Errorf("BSP overlap bound violated: titer %.6f > tcomp %.6f + tcomm %.6f", titer, tcomp, tcomm)
	}
	return nil
}

// CheckSimResult audits one simulated run against its options: measured
// utilizations in [0, 1], iteration accounting, interruption/checkpoint
// bookkeeping, and the loss curve's global-iteration offset.
func CheckSimResult(opt ddnnsim.Options, want int, res *ddnnsim.Result) error {
	for i, u := range res.WorkerCPUUtil {
		if u < 0 || u > 1+relTol {
			return fmt.Errorf("worker %d CPU utilization %v outside [0,1]", i, u)
		}
	}
	for i, u := range res.PSCPUUtil {
		if u < 0 || u > 1+relTol {
			return fmt.Errorf("ps %d CPU utilization %v outside [0,1]", i, u)
		}
	}
	for i, u := range res.PSNICUtil {
		if u < 0 || u > 1+relTol {
			return fmt.Errorf("ps %d NIC utilization %v outside [0,1]", i, u)
		}
	}
	if res.Interrupted {
		if res.Fault == nil {
			return fmt.Errorf("interrupted run reports no fault")
		}
		if res.Iterations >= want {
			return fmt.Errorf("interrupted run completed all %d iterations", want)
		}
		if opt.CheckpointEvery > 0 {
			if res.CheckpointIter%opt.CheckpointEvery != 0 {
				return fmt.Errorf("checkpoint %d not a multiple of cadence %d", res.CheckpointIter, opt.CheckpointEvery)
			}
			if res.CheckpointIter > res.Iterations {
				return fmt.Errorf("checkpoint %d beyond completed %d", res.CheckpointIter, res.Iterations)
			}
		} else if res.CheckpointIter != 0 {
			return fmt.Errorf("checkpoint %d without checkpointing enabled", res.CheckpointIter)
		}
		if res.LostIterations != res.Iterations-res.CheckpointIter {
			return fmt.Errorf("lost %d != completed %d - checkpointed %d",
				res.LostIterations, res.Iterations, res.CheckpointIter)
		}
	} else if res.Iterations != want {
		return fmt.Errorf("run completed %d of %d iterations without interruption", res.Iterations, want)
	}
	if res.Iterations > 0 && !closeRel(res.MeanIterTime, res.TrainingTime/float64(res.Iterations)) {
		return fmt.Errorf("mean iteration time %.6f inconsistent with %.3fs / %d",
			res.MeanIterTime, res.TrainingTime, res.Iterations)
	}
	perWorker := 0
	for _, n := range res.PerWorkerIterations {
		perWorker += n
	}
	// BSP counts a round once in Iterations but every worker computes it.
	if perWorker < res.Iterations {
		return fmt.Errorf("per-worker iteration sum %d below completed %d", perWorker, res.Iterations)
	}
	for i := 1; i < len(res.Loss); i++ {
		if res.Loss[i].Iter <= res.Loss[i-1].Iter || res.Loss[i].Time < res.Loss[i-1].Time {
			return fmt.Errorf("loss curve not monotone at sample %d", i)
		}
	}
	if len(res.Loss) > 0 && res.Loss[0].Iter <= opt.StartIteration {
		return fmt.Errorf("loss curve starts at iteration %d, not after resume offset %d",
			res.Loss[0].Iter, opt.StartIteration)
	}
	return nil
}
