package simtest

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"cynthia/internal/cloud"
	"cynthia/internal/perf"
	"cynthia/internal/plan"
)

// cheapestFeasible returns the cheapest feasible candidate of a search —
// Ranked is ordered feasible-first then cost-ascending, so it is the head
// of the list when any feasible candidate exists.
func cheapestFeasible(res plan.Result) (plan.Plan, bool) {
	if len(res.Ranked) == 0 || !res.Ranked[0].Feasible {
		return plan.Plan{}, false
	}
	return res.Ranked[0], true
}

// TestRelaxingDeadlineNeverRaisesCost is the paper's core economic claim
// as a metamorphic property: loosening the deadline Tg can only open the
// search space, so the cheapest feasible candidate never gets more
// expensive. (The property holds for the cheapest candidate, not for
// Provision's first-feasible pick, whose scan order legitimately shifts
// with Tg — see internal/plan/property_test.go.)
func TestRelaxingDeadlineNeverRaisesCost(t *testing.T) {
	engine := &plan.Engine{Parallelism: 1}
	ctx := context.Background()
	exercised := 0
	for seed := int64(0); seed < 60; seed++ {
		req := GenRequest(NewRand(metaSeedBase + seed))
		res, err := engine.Search(ctx, req)
		if err != nil {
			continue // empty search space; relaxing is checked from the next corpus entry
		}
		base, ok := cheapestFeasible(res)
		if !ok {
			continue
		}
		exercised++
		prev := base.Cost
		for _, factor := range []float64{1.25, 2, 4} {
			relaxed := req
			relaxed.Goal.TimeSec = req.Goal.TimeSec * factor
			rres, err := engine.Search(ctx, relaxed)
			if err != nil {
				t.Errorf("seed %d: relaxing Tg x%.2f emptied the search space: %v", seed, factor, err)
				break
			}
			cand, ok := cheapestFeasible(rres)
			if !ok {
				t.Errorf("seed %d: relaxing Tg x%.2f lost feasibility", seed, factor)
				break
			}
			if cand.Cost > prev+relTol*(1+prev) {
				t.Errorf("seed %d: relaxing Tg x%.2f raised cost %.6f -> %.6f",
					seed, factor, prev, cand.Cost)
			}
			prev = cand.Cost
		}
	}
	if exercised < 10 {
		t.Errorf("only %d corpus entries had a feasible plan; corpus too degenerate to test", exercised)
	}
}

// TestMorePSBandwidthNeverSlowsIteration checks Eq. 3-7 monotonicity:
// scaling up the parameter servers' NIC bandwidth (supply in Eq. 7) can
// only relieve the communication bottleneck, so predicted titer is
// non-increasing.
func TestMorePSBandwidthNeverSlowsIteration(t *testing.T) {
	pred := perf.Cynthia{}
	for seed := int64(0); seed < 60; seed++ {
		rng := NewRand(metaSeedBase + 500 + seed)
		catalog := GenCatalog(rng)
		w := GenWorkload(rng)
		profile := perf.SyntheticProfile(w, catalog.Types()[0])
		spec := GenCluster(rng, catalog)

		prev, err := pred.IterTime(profile, spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, factor := range []float64{1.5, 2, 4} {
			boosted := cloud.ClusterSpec{
				Workers: append([]cloud.InstanceType(nil), spec.Workers...),
				PS:      append([]cloud.InstanceType(nil), spec.PS...),
			}
			for i := range boosted.PS {
				boosted.PS[i].NetMBps *= factor
			}
			titer, err := pred.IterTime(profile, boosted)
			if err != nil {
				t.Fatalf("seed %d x%.1f: %v", seed, factor, err)
			}
			if titer > prev+relTol*(1+prev) {
				t.Errorf("seed %d: PS bandwidth x%.1f raised titer %.6f -> %.6f",
					seed, factor, prev, titer)
			}
			prev = titer
		}
	}
}

// TestParallelSearchEqualsSerial re-runs the corpus through the engine at
// full parallelism and requires bit-identical results: the deterministic
// reduce must make worker count unobservable.
func TestParallelSearchEqualsSerial(t *testing.T) {
	serial := &plan.Engine{Parallelism: 1}
	parallel := &plan.Engine{Parallelism: runtime.GOMAXPROCS(0)}
	ctx := context.Background()
	for seed := int64(0); seed < 60; seed++ {
		req := GenRequest(NewRand(metaSeedBase + seed))
		sres, serr := serial.Search(ctx, req)
		pres, perr := parallel.Search(ctx, req)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("seed %d: serial err=%v, parallel err=%v", seed, serr, perr)
		}
		if serr != nil {
			continue
		}
		if !reflect.DeepEqual(sres, pres) {
			t.Errorf("seed %d: parallel search diverged from serial\n serial:   %+v\n parallel: %+v",
				seed, sres.Plan, pres.Plan)
		}
	}
}

// TestRecoveryNeverBeatsFaultFree drives the same job through the full
// controller pipeline with and without a mid-run preemption: recovery
// redoes lost work and pays restart overhead, so the faulted run can never
// come out cheaper or faster than the fault-free one.
func TestRecoveryNeverBeatsFaultFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed int64
		frac float64
	}{
		{"early", 11, 0.25},
		{"midway", 12, 0.5},
		{"late", 13, 0.75},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := &Scenario{
				Name: "base", Workload: "mnist DNN",
				GoalTimeSec: 3600, LossTarget: 0.2, Seed: tc.seed,
			}
			bout, err := RunScenario(base)
			if err != nil {
				t.Fatal(err)
			}
			if bout.Status != "succeeded" {
				t.Fatalf("fault-free baseline %s (%s)", bout.Status, bout.Error)
			}
			faulted := *base
			faulted.Fault = &FaultSpec{Seed: tc.seed + 100, PreemptAtSec: bout.TrainingTime * tc.frac}
			fout, err := RunScenario(&faulted)
			if err != nil {
				t.Fatal(err)
			}
			if fout.Recoveries == 0 {
				t.Fatalf("preemption at %.0f%% triggered no recovery (status %s)", tc.frac*100, fout.Status)
			}
			if fout.CostUSD < bout.CostUSD-relTol*(1+bout.CostUSD) {
				t.Errorf("faulted run cost %.6f beat fault-free %.6f", fout.CostUSD, bout.CostUSD)
			}
			if fout.TrainingTime < bout.TrainingTime-relTol*(1+bout.TrainingTime) {
				t.Errorf("faulted run time %.2fs beat fault-free %.2fs", fout.TrainingTime, bout.TrainingTime)
			}
		})
	}
}
