package simtest

import (
	"reflect"
	"testing"

	"cynthia/internal/model"
)

// TestGeneratorsDeterministic pins the contract everything else here
// relies on: the same seed reproduces the same case exactly.
func TestGeneratorsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, b := GenRequest(NewRand(seed)), GenRequest(NewRand(seed))
		if !reflect.DeepEqual(a.Profile, b.Profile) || a.Goal != b.Goal ||
			!reflect.DeepEqual(a.Catalog.Types(), b.Catalog.Types()) ||
			a.MaxWorkers != b.MaxWorkers || a.MaxPSEscalations != b.MaxPSEscalations ||
			a.Headroom != b.Headroom {
			t.Fatalf("seed %d: GenRequest not deterministic", seed)
		}
		fa, fb := GenFaultPlan(NewRand(seed)), GenFaultPlan(NewRand(seed))
		if !reflect.DeepEqual(fa, fb) {
			t.Fatalf("seed %d: GenFaultPlan not deterministic", seed)
		}
	}
}

// TestGeneratedValuesInRange spot-checks that generated cases stay inside
// the documented ranges — the invariant suites assume positive, finite
// attributes throughout.
func TestGeneratedValuesInRange(t *testing.T) {
	sawBSP, sawASP := false, false
	for seed := int64(0); seed < 50; seed++ {
		rng := NewRand(seed)
		catalog := GenCatalog(rng)
		types := catalog.Types()
		if len(types) < 2 || len(types) > 6 {
			t.Fatalf("seed %d: catalog size %d outside [2,6]", seed, len(types))
		}
		for _, ty := range types {
			if ty.GFLOPS <= 0 || ty.NetMBps <= 0 || ty.PricePerHour <= 0 {
				t.Fatalf("seed %d: non-positive attribute in %+v", seed, ty)
			}
		}
		w := GenWorkload(rng)
		if w.Sync == model.BSP {
			sawBSP = true
		} else {
			sawASP = true
		}
		if w.WiterGFLOPs <= 0 || w.GparamMB <= 0 || w.Loss.Beta0 <= 0 || w.Loss.Beta1 <= 0 {
			t.Fatalf("seed %d: non-positive workload attribute %+v", seed, w)
		}
		goal := GenGoal(rng, w)
		if goal.TimeSec < 600 || goal.LossTarget <= w.Loss.Beta1 {
			t.Fatalf("seed %d: degenerate goal %+v", seed, goal)
		}
		spec := GenCluster(rng, catalog)
		if spec.NumWorkers() < 1 || spec.NumPS() < 1 {
			t.Fatalf("seed %d: empty cluster", seed)
		}
		fp := GenFaultPlan(rng)
		if fp.PreemptMaxSec < fp.PreemptMinSec {
			t.Fatalf("seed %d: preemption window inverted %+v", seed, fp)
		}
	}
	if !sawBSP || !sawASP {
		t.Error("workload generator never produced both sync modes")
	}
}
