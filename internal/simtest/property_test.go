package simtest

import (
	"reflect"
	"testing"

	"cynthia/internal/ddnnsim"
)

// Base seeds for the fixed corpora. Each test derives one rng per case
// from its own base, so adding cases to one test never reshuffles another.
const (
	searchSeedBase = 1000
	simSeedBase    = 2000
	metaSeedBase   = 3000
)

// TestSearchInvariants audits Algorithm 1 on a corpus of generated
// requests: for every fixed seed the serial search must return the
// cheapest first-feasible candidate the Theorem 4.1 enumeration contains,
// with Eq. 6-8 holding on the chosen plan (see CheckSearch).
func TestSearchInvariants(t *testing.T) {
	feasible, infeasible, failed := 0, 0, 0
	for seed := int64(0); seed < 80; seed++ {
		req := GenRequest(NewRand(searchSeedBase + seed))
		res, err := CheckSearch(req)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			continue
		}
		switch {
		case len(res.Ranked) == 0:
			failed++
		case res.Plan.Feasible:
			feasible++
		default:
			infeasible++
		}
	}
	// The corpus must actually exercise all three outcomes — a generator
	// drift that collapses everything into one bucket would silently gut
	// the properties above.
	if feasible == 0 || infeasible == 0 {
		t.Errorf("degenerate corpus: %d feasible, %d best-effort, %d empty",
			feasible, infeasible, failed)
	}
}

// TestSimInvariants runs generated workloads on generated clusters and
// audits every Result (utilizations, iteration accounting, loss curve),
// then repeats each run — same seed, same options — and requires the two
// Results to be deeply identical: the foundation the golden corpus's
// bit-for-bit replay stands on. A third run injects a mid-run fault and
// audits the interrupted Result's checkpoint bookkeeping.
func TestSimInvariants(t *testing.T) {
	const iters = 40
	for seed := int64(0); seed < 20; seed++ {
		rng := NewRand(simSeedBase + seed)
		catalog := GenCatalog(rng)
		w := GenWorkload(rng).WithIterations(iters)
		spec := GenCluster(rng, catalog)
		opt := ddnnsim.Options{Seed: seed, CheckpointEvery: 7}

		res, err := ddnnsim.Run(w, spec, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckSimResult(opt, iters, res); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}

		again, err := ddnnsim.Run(w, spec, opt)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Errorf("seed %d: same seed, different result", seed)
		}

		fopt := opt
		fopt.Faults = []ddnnsim.Fault{{AtSec: res.TrainingTime / 2, Role: "worker", Index: 0}}
		fres, err := ddnnsim.Run(w, spec, fopt)
		if err != nil {
			t.Fatalf("seed %d fault: %v", seed, err)
		}
		if !fres.Interrupted {
			t.Errorf("seed %d: mid-run fault at %.2fs did not interrupt", seed, res.TrainingTime/2)
			continue
		}
		if err := CheckSimResult(fopt, iters, fres); err != nil {
			t.Errorf("seed %d fault: %v", seed, err)
		}
		if fres.TrainingTime > res.TrainingTime {
			t.Errorf("seed %d: interrupted segment (%.2fs) outlasted the full run (%.2fs)",
				seed, fres.TrainingTime, res.TrainingTime)
		}
	}
}

// TestResumeSplicesLossCurve checks the segment-resume contract the
// recovery path depends on: a run resumed with StartIteration=k reports
// global iterations starting after k, so spliced segments reproduce one
// continuous loss trajectory.
func TestResumeSplicesLossCurve(t *testing.T) {
	rng := NewRand(simSeedBase + 999)
	catalog := GenCatalog(rng)
	w := GenWorkload(rng).WithIterations(30)
	spec := GenCluster(rng, catalog)

	opt := ddnnsim.Options{Seed: 7, StartIteration: 12}
	res, err := ddnnsim.Run(w, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSimResult(opt, 30, res); err != nil {
		t.Error(err)
	}
	if len(res.Loss) == 0 || res.Loss[0].Iter != 13 {
		t.Errorf("resumed segment's loss curve starts at %+v, want global iteration 13", res.Loss[:min(1, len(res.Loss))])
	}
	last := res.Loss[len(res.Loss)-1]
	if last.Iter != 12+30 {
		t.Errorf("resumed segment ends at global iteration %d, want %d", last.Iter, 42)
	}
}
