package simtest

// Differential allocator tests: the incremental max-min allocator
// (flow.AllocIncremental, the engine default) and the parallel
// component-sharded allocator (flow.AllocParallel) must be
// indistinguishable — bit for bit, via reflect.DeepEqual over full
// Results — from the kept pre-incremental full recompute
// (flow.AllocReference) across generated workloads and clusters,
// including fault-interrupted runs. A verify-mode pass re-checks every
// single recompute inside the engine, the golden corpus replays
// byte-identically under AllocParallel, and a clamp-counter replay
// asserts the Resource.Utilization clamp counter stays zero (no hidden
// accounting drift anywhere in the corpus).

import (
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"cynthia/internal/ddnnsim"
	"cynthia/internal/flow"
)

const diffSeedBase = 0x5eed0d1f

// TestDifferentialAllocatorOnGeneratedSims runs each generated simulation
// once per allocator mode and requires deeply identical Results: same
// training time, same loss curve, same utilizations, to the last float.
func TestDifferentialAllocatorOnGeneratedSims(t *testing.T) {
	const iters = 40
	for seed := int64(0); seed < 15; seed++ {
		rng := NewRand(diffSeedBase + seed)
		catalog := GenCatalog(rng)
		w := GenWorkload(rng).WithIterations(iters)
		spec := GenCluster(rng, catalog)
		opt := ddnnsim.Options{Seed: seed, CheckpointEvery: 7, TraceBin: 0.5}

		refOpt := opt
		refOpt.AllocMode = flow.AllocReference
		ref, err := ddnnsim.Run(w, spec, refOpt)
		if err != nil {
			t.Fatalf("seed %d reference: %v", seed, err)
		}
		incOpt := opt
		incOpt.AllocMode = flow.AllocIncremental
		inc, err := ddnnsim.Run(w, spec, incOpt)
		if err != nil {
			t.Fatalf("seed %d incremental: %v", seed, err)
		}
		if !reflect.DeepEqual(ref, inc) {
			t.Errorf("seed %d: incremental result diverged from reference\nreference:   %+v\nincremental: %+v", seed, ref, inc)
		}
		parOpt := opt
		parOpt.AllocMode = flow.AllocParallel
		parOpt.AllocWorkers = 4 // real pool even on a single-CPU host
		par, err := ddnnsim.Run(w, spec, parOpt)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(ref, par) {
			t.Errorf("seed %d: parallel result diverged from reference\nreference: %+v\nparallel:  %+v", seed, ref, par)
		}

		// Interrupted segment: the allocators must also agree mid-run, at
		// an instant that is not a flow-set quiescence point.
		fref := refOpt
		fref.Faults = []ddnnsim.Fault{{AtSec: ref.TrainingTime / 3, Role: "worker", Index: 0}}
		finc := incOpt
		finc.Faults = fref.Faults
		rref, err := ddnnsim.Run(w, spec, fref)
		if err != nil {
			t.Fatalf("seed %d fault reference: %v", seed, err)
		}
		rinc, err := ddnnsim.Run(w, spec, finc)
		if err != nil {
			t.Fatalf("seed %d fault incremental: %v", seed, err)
		}
		if !reflect.DeepEqual(rref, rinc) {
			t.Errorf("seed %d: interrupted incremental result diverged from reference", seed)
		}
		fpar := parOpt
		fpar.Faults = fref.Faults
		rpar, err := ddnnsim.Run(w, spec, fpar)
		if err != nil {
			t.Fatalf("seed %d fault parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(rref, rpar) {
			t.Errorf("seed %d: interrupted parallel result diverged from reference", seed)
		}
	}
}

// TestGoldenCorpusParallelAllocator replays every golden scenario with the
// package-default allocator switched to AllocParallel (the controller
// pipeline constructs its engines in AllocDefault mode) and requires the
// stored expectations to match byte for byte: the sharded allocator must
// be a drop-in replacement all the way up through planner -> controller ->
// ddnnsim, not just at the flow-engine boundary. GOMAXPROCS is raised so
// a real worker pool runs even on a single-CPU host.
func TestGoldenCorpusParallelAllocator(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	prevMode := flow.SetDefaultAllocMode(flow.AllocParallel)
	defer flow.SetDefaultAllocMode(prevMode)

	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden scenarios found")
	}
	for _, path := range paths {
		s, err := LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(s.Name, func(t *testing.T) {
			out, err := RunScenario(s)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if s.Expect == nil {
				t.Fatalf("%s has no expectation; generate one with -update", path)
			}
			if !reflect.DeepEqual(out, s.Expect) {
				t.Errorf("parallel-allocator outcome diverged from golden file\n got: %+v\nwant: %+v", out, s.Expect)
			}
		})
	}
}

// TestVerifyModeOnGeneratedSims runs a subset of generated simulations
// under flow.AllocVerify, which cross-checks incremental against reference
// inside the engine on every recompute and panics on any bitwise rate
// mismatch — catching divergence at the event where it happens rather
// than at the end of the run.
func TestVerifyModeOnGeneratedSims(t *testing.T) {
	if testing.Short() {
		t.Skip("verify mode doubles every allocation; skipping in -short")
	}
	const iters = 25
	for seed := int64(0); seed < 6; seed++ {
		rng := NewRand(diffSeedBase + 100 + seed)
		catalog := GenCatalog(rng)
		w := GenWorkload(rng).WithIterations(iters)
		spec := GenCluster(rng, catalog)
		opt := ddnnsim.Options{Seed: seed, AllocMode: flow.AllocVerify}
		if _, err := ddnnsim.Run(w, spec, opt); err != nil {
			t.Fatalf("seed %d verify: %v", seed, err)
		}
	}
}

// TestGoldenCorpusNoUtilizationClamps replays every golden scenario and
// asserts the process-wide Utilization clamp counter does not move: none
// of the 11 end-to-end runs drives a resource's busy integral past its
// capacity (the drift the old silent clamp in Resource.Utilization would
// have masked).
func TestGoldenCorpusNoUtilizationClamps(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden scenarios found")
	}
	before := flow.UtilizationClamps()
	for _, path := range paths {
		s, err := LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunScenario(s); err != nil {
			t.Fatalf("%s: %v", filepath.Base(path), err)
		}
	}
	if delta := flow.UtilizationClamps() - before; delta != 0 {
		t.Errorf("golden corpus produced %d utilization clamps, want 0 (accounting drift)", delta)
	}
}
