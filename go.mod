module cynthia

go 1.22
