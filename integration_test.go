package cynthia_test

// Whole-stack integration test: the complete Cynthia pipeline, from raw
// profiling through loss fitting, provisioning, and cluster execution —
// asserting each stage against the next, the way the prototype runs it
// (paper Sec. 5, "Cynthia prototype").

import (
	"math"
	"testing"

	"cynthia/internal/cloud"
	"cynthia/internal/cluster"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/loss"
	"cynthia/internal/model"
	"cynthia/internal/perf"
	"cynthia/internal/plan"
	"cynthia/internal/profile"
)

func TestEndToEndPipeline(t *testing.T) {
	catalog := cloud.DefaultCatalog()
	m4, err := catalog.Lookup(cloud.M4XLarge)
	if err != nil {
		t.Fatal(err)
	}
	workload, err := model.WorkloadByName("cifar10 DNN")
	if err != nil {
		t.Fatal(err)
	}

	// Stage 1 — profile once on a baseline worker (Sec. 3).
	rep, err := profile.Run(workload, m4, 0)
	if err != nil {
		t.Fatal(err)
	}
	prof := rep.Profile
	if rel := math.Abs(prof.WiterGFLOPs-workload.WiterGFLOPs) / workload.WiterGFLOPs; rel > 0.05 {
		t.Fatalf("stage 1: profiled witer off by %.1f%%", rel*100)
	}

	// Stage 2 — fit the loss model from an observed curve (Sec. 2).
	obsRun, err := ddnnsim.Run(workload, cloud.Homogeneous(m4, 4, 1),
		ddnnsim.Options{Iterations: 6000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fitted, r2, err := loss.Fit(workload.Sync, loss.PointsFromResult(obsRun, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9 {
		t.Fatalf("stage 2: loss fit R² = %.3f", r2)
	}
	// Use the FITTED coefficients for planning, as a user would.
	planning := *workload
	planning.Loss = fitted
	prof2 := *prof
	prof2.Workload = &planning

	// Stage 3 — provision for a goal (Sec. 4).
	goal := plan.Goal{TimeSec: 5400, LossTarget: 0.8}
	p, err := plan.Provision(plan.Request{Profile: &prof2, Goal: goal, Catalog: catalog})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatalf("stage 3: plan infeasible: %v", p)
	}

	// Stage 4 — execute through the control plane and check the goal.
	master, err := cluster.NewMaster()
	if err != nil {
		t.Fatal(err)
	}
	provider := cloud.NewProvider(catalog, nil)
	ctl := cluster.NewController(master, provider, perf.Cynthia{}, cloud.M4XLarge)
	job, err := ctl.Submit(&planning, goal)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != cluster.StatusSucceeded {
		t.Fatalf("stage 4: job %s (%s)", job.Status, job.Err)
	}
	if job.TrainingTime > goal.TimeSec*1.05 {
		t.Fatalf("stage 4: %0.fs misses the %.0fs goal", job.TrainingTime, goal.TimeSec)
	}
	// The achieved loss hits the target (within curve noise).
	if job.FinalLoss > goal.LossTarget*1.1 {
		t.Fatalf("stage 4: final loss %.3f above target %.2f", job.FinalLoss, goal.LossTarget)
	}
	// And nothing leaked.
	if n := provider.RunningCount(""); n != 0 {
		t.Fatalf("stage 4: %d instances leaked", n)
	}
}
