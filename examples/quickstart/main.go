// Quickstart: the full Cynthia pipeline in ~40 lines.
//
//  1. Pick a Table 1 workload (cifar10 DNN, BSP).
//  2. Profile it for 30 iterations on one baseline m4.xlarge worker.
//  3. Ask the provisioner for the cheapest cluster that reaches loss 0.8
//     within 90 minutes.
//  4. Validate the plan by simulating the training run.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cynthia/internal/cloud"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/model"
	"cynthia/internal/plan"
	"cynthia/internal/profile"
)

func main() {
	workload, err := model.WorkloadByName("cifar10 DNN")
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := cloud.DefaultCatalog().Lookup(cloud.M4XLarge)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: lightweight profiling (paper Sec. 3).
	report, err := profile.Run(workload, baseline, 0)
	if err != nil {
		log.Fatal(err)
	}
	p := report.Profile
	fmt.Printf("profiled %s in %.0fs: witer=%.1f GFLOPs, gparam=%.1f MB\n",
		workload.Name, report.Duration, p.WiterGFLOPs, p.GparamMB)

	// Step 2: provision for a goal (paper Sec. 4, Algorithm 1).
	goal := plan.Goal{TimeSec: 5400, LossTarget: 0.8}
	pl, err := plan.Provision(plan.Request{Profile: p, Goal: goal})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s\n", pl)

	// Step 3: validate by simulation.
	res, err := ddnnsim.Run(workload, cloud.Homogeneous(pl.Type, pl.Workers, pl.PS),
		ddnnsim.Options{Iterations: pl.Iterations, LossEvery: pl.Iterations})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %.0fs (goal %.0fs), final loss %.3f, cost $%.3f\n",
		res.TrainingTime, goal.TimeSec, res.FinalLoss,
		plan.Cost(pl.Type, pl.Workers, pl.PS, res.TrainingTime))
}
