// Customworkload: bring your own model to the provisioner.
//
// Defines a workload purely from measured characteristics (per-iteration
// FLOPs, parameter volume, fitted loss coefficients) — no layer graph —
// then inspects the full candidate space Algorithm 1 searches and the plan
// it picks, across both the CPU and GPU catalogs.
//
// Run with: go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"cynthia/internal/cloud"
	"cynthia/internal/model"
	"cynthia/internal/perf"
	"cynthia/internal/plan"
)

func main() {
	// A transformer-ish job: heavy per-iteration compute, large
	// parameter volume, ASP, loss fitted from a previous run.
	workload, err := model.CustomWorkload(
		"my-transformer",
		180.0, // witer: GFLOPs per iteration
		240.0, // gparam: parameter MB
		32,    // batch
		20000, // full-run iterations
		model.ASP,
		0.008, // PS CPU GFLOPs per MB of traffic
		model.LossParams{Beta0: 900, Beta1: 1.9},
	)
	if err != nil {
		log.Fatal(err)
	}
	goal := plan.Goal{TimeSec: 4 * 3600, LossTarget: 2.4}

	for _, tier := range []struct {
		name    string
		catalog *cloud.Catalog
		base    string
	}{
		{"CPU catalog", cloud.DefaultCatalog(), cloud.M4XLarge},
		{"GPU catalog", cloud.GPUCatalog(), cloud.P2XLarge},
	} {
		base, err := tier.catalog.Lookup(tier.base)
		if err != nil {
			log.Fatal(err)
		}
		profile := perf.SyntheticProfile(workload, base)
		req := plan.Request{Profile: profile, Goal: goal, Catalog: tier.catalog}

		cands, err := plan.Candidates(req)
		if err != nil {
			log.Fatal(err)
		}
		feasible := 0
		for _, c := range cands {
			if c.Feasible {
				feasible++
			}
		}
		fmt.Printf("%s: %d candidates evaluated, %d meet the %.0fh goal\n",
			tier.name, len(cands), feasible, goal.TimeSec/3600)
		for i, c := range cands {
			if i >= 3 {
				break
			}
			fmt.Printf("  #%d: %s\n", i+1, c)
		}
		chosen, err := plan.Provision(req)
		if err != nil {
			fmt.Printf("  -> no plan: %v\n\n", err)
			continue
		}
		fmt.Printf("  -> chosen: %s\n\n", chosen)
	}
	fmt.Println("note: Provision follows the paper's Algorithm 1, which stops at the")
	fmt.Println("first worker count meeting the deadline per type; Candidates exposes")
	fmt.Println("the whole space when you want the global cost optimum instead.")
}
