// Heterogeneous: the straggler study of the paper's Sec. 2, plus what the
// Cynthia model predicts for it.
//
// Trains the mnist DNN (BSP) and ResNet-32 (ASP) on homogeneous m4.xlarge
// clusters and on clusters where half the workers are m1.xlarge
// stragglers, then shows the Cynthia model predicting both — including the
// counter-intuitive effect that once the PS bottlenecks, stragglers stop
// mattering for BSP (paper Fig. 1(b)).
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"cynthia/internal/cloud"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/model"
	"cynthia/internal/perf"
)

func main() {
	catalog := cloud.DefaultCatalog()
	m4, err := catalog.Lookup(cloud.M4XLarge)
	if err != nil {
		log.Fatal(err)
	}
	m1, err := catalog.Lookup(cloud.M1XLarge)
	if err != nil {
		log.Fatal(err)
	}

	cases := []struct {
		workload string
		workers  []int
		iters    int
	}{
		{"mnist DNN", []int{2, 4, 8}, 1000},
		{"ResNet-32", []int{4, 8}, 80},
	}
	var cynthia perf.Cynthia
	for _, c := range cases {
		w, err := model.WorkloadByName(c.workload)
		if err != nil {
			log.Fatal(err)
		}
		p := perf.SyntheticProfile(w, m4)
		fmt.Printf("%s (%s), %d iterations\n", w.Name, w.Sync, c.iters)
		fmt.Printf("  %-8s %-12s %-12s %-10s %-12s %s\n",
			"workers", "homo(s)", "hetero(s)", "slowdown", "predicted(s)", "pred err")
		for _, n := range c.workers {
			homo, err := ddnnsim.Run(w, cloud.Homogeneous(m4, n, 1),
				ddnnsim.Options{Iterations: c.iters, LossEvery: c.iters})
			if err != nil {
				log.Fatal(err)
			}
			spec := cloud.Heterogeneous(m4, m1, n, 1)
			het, err := ddnnsim.Run(w, spec, ddnnsim.Options{Iterations: c.iters, LossEvery: c.iters})
			if err != nil {
				log.Fatal(err)
			}
			pred, err := cynthia.TrainingTime(p, spec, c.iters)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8d %-12.1f %-12.1f %-10.2f %-12.1f %.1f%%\n",
				n, homo.TrainingTime, het.TrainingTime,
				het.TrainingTime/homo.TrainingTime, pred,
				perf.PredictionError(pred, het.TrainingTime)*100)
		}
		fmt.Println()
	}
	fmt.Println("note: mnist at 8 workers shows stragglers ~not mattering — the PS is")
	fmt.Println("the bottleneck either way (paper Fig. 1(b) and Table 2).")
}
