// Autoscale: the full prototype loop on the Kubernetes-like control plane.
//
// A controller receives training jobs with (deadline, loss) goals,
// profiles each workload once, provisions instances from the simulated
// cloud, joins them to the master with a kubeadm-style token, schedules
// worker/PS pods, runs the training, and tears the cluster down —
// reporting whether each goal was met and what it cost.
//
// Run with: go run ./examples/autoscale
package main

import (
	"fmt"
	"log"

	"cynthia/internal/cloud"
	"cynthia/internal/cluster"
	"cynthia/internal/model"
	"cynthia/internal/plan"
)

func main() {
	master, err := cluster.NewMaster()
	if err != nil {
		log.Fatal(err)
	}
	token, caHash := master.JoinCredentials()
	fmt.Printf("master up; nodes join with:\n  kubeadm join --token %s --discovery-token-ca-cert-hash %s\n\n",
		token, caHash[:23]+"...")

	provider := cloud.NewProvider(cloud.DefaultCatalog(), nil)
	controller := cluster.NewController(master, provider, nil, "")

	jobs := []struct {
		workload string
		goal     plan.Goal
	}{
		{"cifar10 DNN", plan.Goal{TimeSec: 5400, LossTarget: 0.8}},
		{"ResNet-32", plan.Goal{TimeSec: 7200, LossTarget: 0.6}},
		{"VGG-19", plan.Goal{TimeSec: 3600, LossTarget: 0.8}},
	}
	for _, spec := range jobs {
		w, err := model.WorkloadByName(spec.workload)
		if err != nil {
			log.Fatal(err)
		}
		job, err := controller.Submit(w, spec.goal)
		if err != nil {
			log.Fatalf("job for %s failed: %v", spec.workload, err)
		}
		fmt.Printf("%s  goal %.0fs/loss %.2f\n", job.ID, spec.goal.TimeSec, spec.goal.LossTarget)
		fmt.Printf("  plan:   %s\n", job.Plan)
		fmt.Printf("  result: %s in %.0fs, final loss %.3f, cost $%.3f\n\n",
			job.Status, job.TrainingTime, job.FinalLoss, job.Cost)
	}
	fmt.Printf("cloud bill so far: $%.3f; running instances: %d\n",
		provider.Bill(), provider.RunningCount(""))
}
