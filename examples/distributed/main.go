// Distributed: real parameter-server training over TCP, in process.
//
// Launches 2 PS shards and 4 workers training an MLP on synthetic
// mnist-like data, first with BSP and then with ASP, and compares the
// resulting loss curves — the real-system counterpart of the paper's
// Fig. 4 observation that ASP converges more slowly per iteration as
// workers are added (parameter staleness).
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cynthia/internal/data"
	"cynthia/internal/model"
	"cynthia/internal/ps"
)

func main() {
	dataset, err := data.MnistLike(rand.New(rand.NewSource(42)), 2048)
	if err != nil {
		log.Fatal(err)
	}
	configs := []struct {
		name      string
		sync      model.SyncMode
		staleness int
		optimizer string
	}{
		{"BSP + SGD", model.BSP, 0, "sgd"},
		{"ASP + SGD (unbounded staleness)", model.ASP, 0, "sgd"},
		{"SSP (ASP, staleness <= 2) + Adam", model.ASP, 2, "adam"},
	}
	for _, c := range configs {
		lr := 0.1
		if c.optimizer == "adam" {
			lr = 0.005
		}
		res, err := ps.RunLocalJob(ps.JobConfig{
			Sizes:        []int{784, 128, 10},
			Sync:         c.sync,
			Workers:      4,
			Servers:      2,
			Dataset:      dataset,
			Batch:        32,
			Iterations:   150,
			LR:           lr,
			Optimizer:    c.optimizer,
			MaxStaleness: c.staleness,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		curve := res.GlobalLossCurve()
		fmt.Printf("%s: 4 workers x 2 PS shards over TCP\n", c.name)
		staleness := 0.0
		for _, ws := range res.WorkerStats {
			staleness += ws.MeanStaleness()
		}
		// Note: this metric counts peer updates between one worker's
		// consecutive syncs (≈ workers-1 for healthy ASP). The SSP bound
		// separately caps how far the fastest worker's clock may run
		// ahead of the slowest — it only bites when workers diverge.
		fmt.Printf("  mean staleness: %.2f peer updates/sync\n", staleness/4)
		fmt.Printf("  loss %.3f -> %.3f over %d iterations/worker\n",
			res.MeanInitialLoss, res.MeanFinalLoss, len(curve))
		fmt.Printf("  training accuracy: %.1f%%\n", res.TrainAccuracy*100)
		for _, s := range res.ServerStats {
			fmt.Printf("  shard: %d pushes, %d applies, %.1f MB in, %.1f MB out\n",
				s.Pushes, s.Applies, float64(s.BytesIn)/1e6, float64(s.BytesOut)/1e6)
		}
		fmt.Printf("  loss curve (every 25 iters):")
		for i := 0; i < len(curve); i += 25 {
			fmt.Printf(" %.3f", curve[i])
		}
		fmt.Println()
		fmt.Println()
	}
}
