package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cynthia/internal/flow
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAllocate64Flows/incremental         	  448148	      2503 ns/op	       0 B/op	       0 allocs/op
BenchmarkAllocate64Flows/reference           	   77682	     15186 ns/op	    7144 B/op	     140 allocs/op
BenchmarkEngineThroughput/incremental-8      	    5331	    238421 ns/op	  104593 B/op	    2012 allocs/op
BenchmarkEngineThroughput/reference-8        	    2034	    525839 ns/op	  144578 B/op	    5010 allocs/op
PASS
ok  	cynthia/internal/flow	10.271s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", f.Goos, f.Goarch, f.CPU)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkAllocate64Flows/incremental" || b.Iters != 448148 ||
		b.NsPerOp != 2503 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.Pkg != "cynthia/internal/flow" {
		t.Errorf("pkg = %q", b.Pkg)
	}
	// The -8 procs suffix strips into Procs so baselines from machines
	// with different core counts compare under the same name.
	p := f.Benchmarks[2]
	if p.Name != "BenchmarkEngineThroughput/incremental" || p.Procs != 8 {
		t.Errorf("procs-suffixed benchmark = %+v", p)
	}
}

// TestParseBenchMergesRepeatedSamples: with -count=N go test prints the
// same benchmark N times; parse must collapse them to the per-metric min.
func TestParseBenchMergesRepeatedSamples(t *testing.T) {
	const repeated = `pkg: cynthia/internal/flow
BenchmarkHot/incremental-8   1000   300 ns/op   16 B/op   2 allocs/op
BenchmarkHot/incremental-8   2000   250 ns/op   16 B/op   3 allocs/op
BenchmarkHot/incremental-8   1500   280 ns/op    8 B/op   2 allocs/op
PASS
`
	f, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks after merge, want 1", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.NsPerOp != 250 || b.Iters != 2000 || b.BytesPerOp != 8 || b.AllocsPerOp != 2 {
		t.Errorf("merged benchmark = %+v, want min of each metric (250 ns, iters 2000, 8 B, 2 allocs)", b)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("empty bench output accepted")
	}
}

func mkFile(ns map[string][2]float64) *File {
	f := &File{Version: 1}
	for name, v := range ns {
		f.Benchmarks = append(f.Benchmarks, Benchmark{Name: name, Iters: 1, NsPerOp: v[0], AllocsPerOp: v[1]})
	}
	return f
}

func TestCompareGates(t *testing.T) {
	baseline := mkFile(map[string][2]float64{
		"BenchmarkX/incremental": {100, 0},
		"BenchmarkX/reference":   {400, 140},
	})

	// Clean run: same ratio, allocs flat, speedup 4x.
	_, fails := compare(baseline, mkFile(map[string][2]float64{
		"BenchmarkX/incremental": {110, 0},
		"BenchmarkX/reference":   {440, 140},
	}), 10, 2, 0)
	if len(fails) != 0 {
		t.Errorf("clean run failed gates: %v", fails)
	}

	// Allocation regression.
	_, fails = compare(baseline, mkFile(map[string][2]float64{
		"BenchmarkX/incremental": {100, 3},
		"BenchmarkX/reference":   {400, 140},
	}), 10, 2, 0)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Errorf("alloc regression not caught: %v", fails)
	}

	// Ratio regression: incremental slowed 2x relative to reference even
	// though the machine is uniformly faster (raw ns below baseline).
	_, fails = compare(baseline, mkFile(map[string][2]float64{
		"BenchmarkX/incremental": {90, 0},
		"BenchmarkX/reference":   {180, 140},
	}), 10, 0, 0)
	if len(fails) != 1 || !strings.Contains(fails[0], "relative to") {
		t.Errorf("ratio regression not caught: %v", fails)
	}

	// Speedup floor: reference only 1.5x slower.
	_, fails = compare(baseline, mkFile(map[string][2]float64{
		"BenchmarkX/incremental": {100, 0},
		"BenchmarkX/reference":   {150, 140},
	}), 1000, 2, 0)
	if len(fails) != 1 || !strings.Contains(fails[0], "faster than") {
		t.Errorf("speedup floor not enforced: %v", fails)
	}

	// Raw ns gate for benchmarks without a reference sibling.
	soloBase := mkFile(map[string][2]float64{"BenchmarkY": {100, 0}})
	_, fails = compare(soloBase, mkFile(map[string][2]float64{"BenchmarkY": {150, 0}}), 10, 2, 0)
	if len(fails) != 1 || !strings.Contains(fails[0], "regressed") {
		t.Errorf("raw ns regression not caught: %v", fails)
	}

	// New benchmarks (absent from the baseline) never fail the gates.
	_, fails = compare(soloBase, mkFile(map[string][2]float64{
		"BenchmarkY": {100, 0},
		"BenchmarkZ": {9999, 50},
	}), 10, 2, 0)
	if len(fails) != 0 {
		t.Errorf("new benchmark tripped gates: %v", fails)
	}
}

// parFile builds a File with a serial/parallel flow-package pair at the
// given procs count and ns/op values.
func parFile(procs int, serialNs, parallelNs float64) *File {
	return &File{Version: 1, Benchmarks: []Benchmark{
		{Name: "BenchmarkAllocManyComponents/serial", Pkg: "cynthia/internal/flow", Procs: procs, Iters: 1, NsPerOp: serialNs},
		{Name: "BenchmarkAllocManyComponents/parallel", Pkg: "cynthia/internal/flow", Procs: procs, Iters: 1, NsPerOp: parallelNs},
	}}
}

func TestCompareParallelFloor(t *testing.T) {
	baseline := parFile(8, 1000, 400)

	// 2.5x at 8 procs clears the 2x floor.
	_, fails := compare(baseline, parFile(8, 1000, 400), 10, 0, 2)
	if len(fails) != 0 {
		t.Errorf("clean parallel run failed gates: %v", fails)
	}

	// 1.2x at 8 procs is below the floor.
	_, fails = compare(baseline, parFile(8, 1000, 830), 1000, 0, 2)
	if len(fails) != 1 || !strings.Contains(fails[0], "faster than") {
		t.Errorf("parallel floor not enforced: %v", fails)
	}

	// At 2 procs the floor adapts to 0.6*2 = 1.2x, so 1.3x passes.
	_, fails = compare(parFile(2, 1000, 760), parFile(2, 1000, 760), 1000, 0, 2)
	if len(fails) != 0 {
		t.Errorf("adaptive floor at 2 procs failed: %v", fails)
	}

	// Single-proc runs skip the floor: the pool degenerates to serial.
	report, fails := compare(parFile(1, 1000, 1010), parFile(1, 1000, 1010), 1000, 0, 2)
	if len(fails) != 0 {
		t.Errorf("single-proc run tripped parallel floor: %v", fails)
	}
	if !strings.Contains(report, "parallel floor skipped") {
		t.Errorf("single-proc skip not reported:\n%s", report)
	}

	// Cross-procs runs skip the baseline ratio gate (parallel speed is
	// procs-bound), but the within-run floor still applies.
	_, fails = compare(parFile(1, 1000, 1000), parFile(8, 1000, 400), 0.0001, 0, 2)
	if len(fails) != 0 {
		t.Errorf("cross-procs comparison tripped ratio gate: %v", fails)
	}

	// Same-procs ratio regression is caught even when the floor passes.
	_, fails = compare(baseline, parFile(8, 1000, 500), 10, 0, 2)
	if len(fails) != 1 || !strings.Contains(fails[0], "relative to") {
		t.Errorf("parallel ratio regression not caught: %v", fails)
	}
}

func TestCompareItersPerSec(t *testing.T) {
	mk := func(itersPerSec float64) *File {
		return &File{Version: 1, Benchmarks: []Benchmark{{
			Name: "BenchmarkLargeClusterIterations", Pkg: "cynthia/internal/ddnnsim",
			Iters: 1, NsPerOp: 3e6, ItersPerSec: itersPerSec,
		}}}
	}
	if _, fails := compare(mk(30000), mk(29000), 10, 0, 0); len(fails) != 0 {
		t.Errorf("small iters/s dip tripped the gate: %v", fails)
	}
	_, fails := compare(mk(30000), mk(20000), 10, 0, 0)
	if len(fails) != 1 || !strings.Contains(fails[0], "iters/s") {
		t.Errorf("iters/s collapse not caught: %v", fails)
	}
}

func TestParseItersPerSec(t *testing.T) {
	const out = `pkg: cynthia/internal/ddnnsim
BenchmarkLargeClusterIterations   122   3145562 ns/op   31791 iters/s   1027331 B/op   19047 allocs/op
BenchmarkLargeClusterIterations   120   3200000 ns/op   31200 iters/s   1027331 B/op   19047 allocs/op
PASS
`
	f, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	// ns/op merges to the min, iters/s (higher is better) to the max.
	if b.NsPerOp != 3145562 || b.ItersPerSec != 31791 {
		t.Errorf("merged benchmark = %+v, want ns/op 3145562 and iters/s 31791", b)
	}
}
