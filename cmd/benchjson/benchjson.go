package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"` // without the -<procs> suffix
	Pkg         string  `json:"pkg,omitempty"`
	Procs       int     `json:"procs,omitempty"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	ItersPerSec float64 `json:"iters_per_sec,omitempty"` // custom b.ReportMetric, higher is better
}

// File is the committed baseline format (BENCH_flow.json).
type File struct {
	Version    int         `json:"version"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench reads `go test -bench` text output: goos/goarch/cpu/pkg
// header lines and benchmark result lines of the shape
//
//	BenchmarkName/sub-8   448148   2503 ns/op   0 B/op   0 allocs/op
func parseBench(r io.Reader) (*File, error) {
	out := &File{Version: 1}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				b.Pkg = pkg
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on input")
	}
	out.Benchmarks = mergeMin(out.Benchmarks)
	return out, nil
}

// mergeMin collapses repeated samples of the same benchmark (go test
// -count=N) into one entry holding the per-metric minimum — the standard
// noise-robust statistic for benchmark results: scheduler interference
// only ever adds time and allocations, never removes them. Order of first
// appearance is preserved.
func mergeMin(in []Benchmark) []Benchmark {
	byName := make(map[string]int, len(in))
	var out []Benchmark
	for _, b := range in {
		i, seen := byName[b.Name]
		if !seen {
			byName[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		if b.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = b.NsPerOp
			out[i].Iters = b.Iters
		}
		out[i].BytesPerOp = min(out[i].BytesPerOp, b.BytesPerOp)
		out[i].AllocsPerOp = min(out[i].AllocsPerOp, b.AllocsPerOp)
		// iters/s is a throughput: higher is better, so keep the max.
		out[i].ItersPerSec = max(out[i].ItersPerSec, b.ItersPerSec)
	}
	return out
}

// parseLine parses one result line; ok is false for lines that start with
// "Benchmark" but are not results (e.g. a bare name printed before a
// sub-benchmark runs).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false, nil
	}
	var b Benchmark
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // not a result line
	}
	b.Iters = iters
	// The rest is value/unit pairs: 2503 ns/op, 0 B/op, 0 allocs/op.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("parsing %q: bad value %q", line, fields[i])
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "iters/s":
			b.ItersPerSec = v
		}
	}
	if b.NsPerOp == 0 && !strings.Contains(line, "ns/op") {
		return Benchmark{}, false, nil
	}
	return b, true, nil
}

func runParse(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("parse", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := parseBench(in)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
	return nil
}

func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := new(File)
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}

// referenceSibling maps Foo/incremental -> Foo/reference.
func referenceSibling(name string) (string, bool) {
	if strings.HasSuffix(name, "/incremental") {
		return strings.TrimSuffix(name, "/incremental") + "/reference", true
	}
	return "", false
}

// serialSibling maps Foo/parallel -> Foo/serial: the single-threaded run
// of the same work, the denominator for the parallel speedup floor.
func serialSibling(name string) (string, bool) {
	if strings.HasSuffix(name, "/parallel") {
		return strings.TrimSuffix(name, "/parallel") + "/serial", true
	}
	return "", false
}

// flowPkg reports whether a benchmark belongs to the flow engine package,
// the only place where the parallel speedup floor is a hard acceptance
// gate (other packages carry serial/parallel pairs whose ratio is
// workload-bound, not allocator-bound).
func flowPkg(b Benchmark) bool {
	return strings.HasSuffix(b.Pkg, "internal/flow")
}

func index(f *File) map[string]Benchmark {
	m := make(map[string]Benchmark, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		m[b.Name] = b
	}
	return m
}

// compare checks current against baseline and returns human-readable
// failures (empty = pass) plus a benchstat-style report.
func compare(baseline, current *File, thresholdPct, minSpeedup, minParSpeedup float64) (report string, failures []string) {
	base := index(baseline)
	cur := index(current)
	var names []string
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, n := range names {
		c := cur[n]
		b, inBase := base[n]
		if !inBase {
			fmt.Fprintf(&sb, "%-44s %14s %14.0f %8s\n", n, "-", c.NsPerOp, "new")
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		fmt.Fprintf(&sb, "%-44s %14.0f %14.0f %+7.1f%%\n", n, b.NsPerOp, c.NsPerOp, delta)

		// Gate 1: allocations never increase (machine-independent). The
		// 0.1%+0.5 slack keeps zero-alloc benchmarks strict (a single
		// new allocation still fails) while letting end-to-end runs with
		// tens of thousands of allocs absorb +/-1 amortization jitter
		// from benchtime-dependent slice growth.
		if c.AllocsPerOp > b.AllocsPerOp*1.001+0.5 {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op rose %.0f -> %.0f", n, b.AllocsPerOp, c.AllocsPerOp))
		}

		// Raw (non-ratio) comparisons against the baseline carry the full
		// machine-speed difference between the baseline host and this one,
		// so they gate at 3x the threshold; sibling-ratio gates below keep
		// the tight threshold because the ratio cancels host speed.
		rawPct := 3 * thresholdPct

		// Gate on iters/s where both runs report it (custom throughput
		// metric, higher is better): the end-to-end simulator throughput
		// must not fall more than the raw threshold below the baseline.
		if b.ItersPerSec > 0 && c.ItersPerSec > 0 &&
			c.ItersPerSec < b.ItersPerSec*(1-rawPct/100) {
			failures = append(failures, fmt.Sprintf(
				"%s: iters/s fell %.0f -> %.0f (> %.0f%%)",
				n, b.ItersPerSec, c.ItersPerSec, rawPct))
		}

		// Gate 2: ns/op regression beyond the threshold. When both runs
		// carry the /reference sibling, compare the incremental/reference
		// ratio instead of raw ns — the ratio cancels hardware differences
		// between the baseline machine and this one.
		refName, hasRef := referenceSibling(n)
		if hasRef {
			bref, okB := base[refName]
			cref, okC := cur[refName]
			if okB && okC && bref.NsPerOp > 0 && cref.NsPerOp > 0 {
				baseRatio := b.NsPerOp / bref.NsPerOp
				curRatio := c.NsPerOp / cref.NsPerOp
				if curRatio > baseRatio*(1+thresholdPct/100) {
					failures = append(failures, fmt.Sprintf(
						"%s: ns/op relative to %s regressed %.3f -> %.3f (> %.0f%%)",
						n, refName, baseRatio, curRatio, thresholdPct))
				}
				continue
			}
		}
		// "/parallel" benchmarks scale with the core count, so their raw
		// ns and their ratio against the serial sibling only compare
		// meaningfully between multi-proc runs at the same GOMAXPROCS (on
		// one proc the pool degenerates to the serial path and the ratio
		// is pure noise around 1); otherwise the within-run speedup floor
		// (gate 4) is the only check.
		if serName, hasSer := serialSibling(n); hasSer {
			bser, okB := base[serName]
			cser, okC := cur[serName]
			if okB && okC && bser.NsPerOp > 0 && cser.NsPerOp > 0 &&
				b.Procs == c.Procs && c.Procs > 1 {
				baseRatio := b.NsPerOp / bser.NsPerOp
				curRatio := c.NsPerOp / cser.NsPerOp
				if curRatio > baseRatio*(1+thresholdPct/100) {
					failures = append(failures, fmt.Sprintf(
						"%s: ns/op relative to %s regressed %.3f -> %.3f (> %.0f%%)",
						n, serName, baseRatio, curRatio, thresholdPct))
				}
			}
			continue
		}
		// "/reference" benchmarks are the oracle denominator, not a
		// protected hot path: their raw speed gates nothing (the paired
		// incremental benchmark is gated on the ratio against them).
		if delta > rawPct && !strings.HasSuffix(n, "/reference") {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op regressed %.0f -> %.0f (%+.1f%% > %.0f%%)",
				n, b.NsPerOp, c.NsPerOp, delta, rawPct))
		}
	}

	// Gate 3: the tentpole acceptance — within the current run, every
	// incremental allocator benchmark beats its reference sibling by at
	// least minSpeedup.
	if minSpeedup > 0 {
		for _, n := range names {
			refName, ok := referenceSibling(n)
			if !ok {
				continue
			}
			ref, okRef := cur[refName]
			if !okRef || cur[n].NsPerOp <= 0 {
				continue
			}
			speedup := ref.NsPerOp / cur[n].NsPerOp
			fmt.Fprintf(&sb, "%-44s speedup vs reference: %.2fx (floor %.1fx)\n", n, speedup, minSpeedup)
			if speedup < minSpeedup {
				failures = append(failures, fmt.Sprintf(
					"%s: only %.2fx faster than %s, want >= %.1fx", n, speedup, refName, minSpeedup))
			}
		}
	}

	// Gate 4: within the current run, the flow engine's sharded parallel
	// allocator must beat its serial sibling on the many-component
	// topology. The floor adapts to the machine: min(minParSpeedup,
	// 0.6*GOMAXPROCS), and is skipped entirely on single-proc runs where
	// the pool degenerates to the serial path by construction.
	if minParSpeedup > 0 {
		for _, n := range names {
			serName, ok := serialSibling(n)
			if !ok || !flowPkg(cur[n]) {
				continue
			}
			ser, okSer := cur[serName]
			if !okSer || cur[n].NsPerOp <= 0 || ser.NsPerOp <= 0 {
				continue
			}
			if cur[n].Procs <= 1 {
				fmt.Fprintf(&sb, "%-44s parallel floor skipped: single-proc run\n", n)
				continue
			}
			floor := min(minParSpeedup, 0.6*float64(cur[n].Procs))
			speedup := ser.NsPerOp / cur[n].NsPerOp
			fmt.Fprintf(&sb, "%-44s speedup vs serial: %.2fx (floor %.2fx at %d procs)\n",
				n, speedup, floor, cur[n].Procs)
			if speedup < floor {
				failures = append(failures, fmt.Sprintf(
					"%s: only %.2fx faster than %s at %d procs, want >= %.2fx",
					n, speedup, serName, cur[n].Procs, floor))
			}
		}
	}
	return sb.String(), failures
}

func runCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_flow.json", "committed baseline JSON")
	currentPath := fs.String("current", "", "current run JSON (from benchjson parse)")
	threshold := fs.Float64("threshold", 10, "max ns/op regression percent")
	minSpeedup := fs.Float64("min-speedup", 2, "min incremental-vs-reference speedup in the current run (0 disables)")
	minParSpeedup := fs.Float64("min-par-speedup", 0, "min parallel-vs-serial speedup for flow-package benchmarks, capped at 0.6*procs and skipped on single-proc runs (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *currentPath == "" {
		return fmt.Errorf("compare: -current is required")
	}
	baseline, err := loadFile(*baselinePath)
	if err != nil {
		return err
	}
	current, err := loadFile(*currentPath)
	if err != nil {
		return err
	}
	report, failures := compare(baseline, current, *threshold, *minSpeedup, *minParSpeedup)
	io.WriteString(stdout, report)
	if len(failures) > 0 {
		return fmt.Errorf("%d perf gate failure(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(stdout, "perf gates passed")
	return nil
}
