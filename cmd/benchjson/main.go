// Command benchjson turns `go test -bench` output into a committed JSON
// baseline and compares runs against it, benchstat-style — the repo's
// perf-trajectory harness (make bench-json / make bench-check).
//
// Usage:
//
//	go test -bench . -benchmem ./internal/flow | benchjson parse -out BENCH_flow.json
//	benchjson compare -baseline BENCH_flow.json -current .bench_current.json \
//	    -threshold 10 -min-speedup 2
//
// The compare gates are chosen to survive hardware changes between the
// machine that committed the baseline and the machine running CI:
//
//   - allocs/op must not increase versus the baseline (machine-independent)
//   - every <name>/incremental sub-benchmark must beat its
//     <name>/reference sibling by at least -min-speedup within the
//     current run (same machine, same load — the tentpole acceptance)
//   - ns/op must not regress by more than -threshold percent; when both
//     runs contain the benchmark's /reference sibling the comparison uses
//     the incremental/reference ratio (stable across machines), otherwise
//     raw ns/op (meaningful when baseline and current share hardware)
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:], os.Stdin, os.Stdout)
	case "compare":
		err = runCompare(os.Args[2:], os.Stdout)
	case "-h", "--help", "help":
		usage()
		return
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func usage() {
	io.WriteString(os.Stderr, `usage:
  benchjson parse   [-out FILE]                read "go test -bench" output on stdin, emit JSON
  benchjson compare -baseline FILE -current FILE [-threshold PCT] [-min-speedup X]
`)
}
