// Command cynthiasim runs the DDNN training simulator directly: pick a
// workload and a cluster shape, get training time, utilization, and
// throughput measurements.
//
// Usage:
//
//	cynthiasim -workload "mnist DNN" -workers 8 -ps 1 [-type m4.xlarge] [-stragglers] [-iterations 500]
package main

import (
	"flag"
	"fmt"
	"os"

	"cynthia/internal/cloud"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/model"
	"cynthia/internal/obs"
)

func main() {
	var (
		workloadName = flag.String("workload", "mnist DNN", "Table 1 workload name")
		workers      = flag.Int("workers", 4, "number of worker dockers")
		ps           = flag.Int("ps", 1, "number of PS dockers")
		typeName     = flag.String("type", cloud.M4XLarge, "instance type")
		stragglers   = flag.Bool("stragglers", false, "make ⌊n/2⌋ workers m1.xlarge stragglers")
		iterations   = flag.Int("iterations", 0, "iteration budget (0 = workload default)")
		seed         = flag.Int64("seed", 0, "simulation seed")
		trace        = flag.Bool("trace", false, "print the PS NIC throughput series")
		records      = flag.Bool("records", false, "print per-iteration records as CSV")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace_event JSON file of the run (open in chrome://tracing or Perfetto)")
		faultAt      = flag.Float64("fault-at", 0, "kill one docker at this simulated second (0 = no fault)")
		faultRole    = flag.String("fault-role", "worker", "role of the docker killed by -fault-at: worker or ps")
		checkpoint   = flag.Int("checkpoint-every", 0, "checkpoint cadence in iterations (0 = no checkpointing)")
	)
	flag.Parse()
	if err := run(*workloadName, *workers, *ps, *typeName, *stragglers, *iterations, *seed, *trace, *records, *traceOut,
		*faultAt, *faultRole, *checkpoint); err != nil {
		fmt.Fprintln(os.Stderr, "cynthiasim:", err)
		os.Exit(1)
	}
}

func run(workloadName string, workers, ps int, typeName string, stragglers bool, iterations int, seed int64, trace, records bool, traceOut string,
	faultAt float64, faultRole string, checkpoint int) error {
	w, err := model.WorkloadByName(workloadName)
	if err != nil {
		return err
	}
	catalog := cloud.DefaultCatalog()
	it, err := catalog.Lookup(typeName)
	if err != nil {
		return err
	}
	spec := ddnnsim.Homogeneous(it, workers, ps)
	if stragglers {
		m1, err := catalog.Lookup(cloud.M1XLarge)
		if err != nil {
			return err
		}
		spec = ddnnsim.Heterogeneous(it, m1, workers, ps)
	}
	opt := ddnnsim.Options{
		Iterations: iterations, Seed: seed, LossEvery: 1, RecordIterations: records,
		CheckpointEvery: checkpoint,
	}
	if faultAt > 0 {
		if faultRole != "worker" && faultRole != "ps" {
			return fmt.Errorf("unknown -fault-role %q (want worker or ps)", faultRole)
		}
		opt.Faults = []ddnnsim.Fault{{AtSec: faultAt, Role: faultRole}}
	}
	if trace {
		opt.TraceBin = 1
	}
	var tracer *obs.Tracer
	if traceOut != "" {
		tracer = obs.NewTracer()
		opt.Trace = tracer
	}
	res, err := ddnnsim.Run(w, spec, opt)
	if err != nil {
		return err
	}
	if tracer != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace with %d events to %s\n", len(tracer.Events()), traceOut)
	}
	fmt.Printf("%s on %d x %s workers + %d PS", w.Name, workers, typeName, ps)
	if stragglers {
		fmt.Printf(" (with %d m1.xlarge stragglers)", workers/2)
	}
	fmt.Println()
	if res.Interrupted {
		fmt.Printf("  INTERRUPTED:       %s[%d] died at %.1f s after %d iterations (%d checkpointed, %d lost)\n",
			res.Fault.Role, res.Fault.Index, res.TrainingTime, res.Iterations, res.CheckpointIter, res.LostIterations)
	}
	fmt.Printf("  training time:     %.1f s (%d iterations, %.3f s/iter)\n",
		res.TrainingTime, res.Iterations, res.MeanIterTime)
	fmt.Printf("  computation time:  %.1f s   communication time: %.1f s\n", res.ComputeTime, res.CommTime)
	fmt.Printf("  worker CPU util:   %.1f%% (mean)\n", res.MeanWorkerCPUUtil()*100)
	for k := range res.PSCPUUtil {
		fmt.Printf("  PS %d:              CPU %.1f%%, NIC %.1f%%\n", k, res.PSCPUUtil[k]*100, res.PSNICUtil[k]*100)
	}
	fmt.Printf("  final loss:        %.3f\n", res.FinalLoss)
	if trace && len(res.PSNICSeries) > 0 {
		fmt.Println("  PS0 NIC throughput (MB/s per second):")
		for i, r := range res.PSNICSeries[0].Rates() {
			fmt.Printf("    t=%4ds  %7.1f\n", i, r)
		}
	}
	if records {
		fmt.Println("iteration,worker,end_sec,compute_sec,comm_sec")
		for _, r := range res.IterRecords {
			fmt.Printf("%d,%d,%.4f,%.4f,%.4f\n", r.Index, r.Worker, r.EndSec, r.ComputeSec, r.CommSec)
		}
	}
	return nil
}
