package main

import "testing"

func TestRunBasic(t *testing.T) {
	if err := run("mnist DNN", 4, 1, "m4.xlarge", false, 100, 1, false, true); err != nil {
		t.Fatalf("basic run failed: %v", err)
	}
}

func TestRunWithStragglersAndTrace(t *testing.T) {
	if err := run("mnist DNN", 4, 1, "m4.xlarge", true, 100, 1, true, false); err != nil {
		t.Fatalf("straggler+trace run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("NoSuchNet", 4, 1, "m4.xlarge", false, 10, 1, false, false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("mnist DNN", 4, 1, "z9.huge", false, 10, 1, false, false); err == nil {
		t.Error("unknown type accepted")
	}
	if err := run("mnist DNN", 0, 1, "m4.xlarge", false, 10, 1, false, false); err == nil {
		t.Error("zero workers accepted")
	}
}
