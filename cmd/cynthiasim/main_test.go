package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunBasic(t *testing.T) {
	if err := run("mnist DNN", 4, 1, "m4.xlarge", false, 100, 1, false, true, "", 0, "worker", 0); err != nil {
		t.Fatalf("basic run failed: %v", err)
	}
}

func TestRunWithStragglersAndTrace(t *testing.T) {
	if err := run("mnist DNN", 4, 1, "m4.xlarge", true, 100, 1, true, false, "", 0, "worker", 0); err != nil {
		t.Fatalf("straggler+trace run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("NoSuchNet", 4, 1, "m4.xlarge", false, 10, 1, false, false, "", 0, "worker", 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("mnist DNN", 4, 1, "z9.huge", false, 10, 1, false, false, "", 0, "worker", 0); err == nil {
		t.Error("unknown type accepted")
	}
	if err := run("mnist DNN", 0, 1, "m4.xlarge", false, 10, 1, false, false, "", 0, "worker", 0); err == nil {
		t.Error("zero workers accepted")
	}
	if err := run("mnist DNN", 4, 1, "m4.xlarge", false, 10, 1, false, false, "", 5, "scheduler", 0); err == nil {
		t.Error("unknown fault role accepted")
	}
}

func TestRunWithFault(t *testing.T) {
	if err := run("mnist DNN", 4, 1, "m4.xlarge", false, 100, 1, false, false, "", 10, "worker", 20); err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
}

// TestRunTraceOut round-trips a -trace-out file: the output must be valid
// JSON, the non-metadata events must have monotonically non-decreasing
// timestamps, and the BSP phases (compute, push, pull, barrier) must all
// be covered by spans.
func TestRunTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run("mnist DNN", 4, 1, "m4.xlarge", false, 20, 1, false, false, path, 0, "worker", 0); err != nil {
		t.Fatalf("trace-out run failed: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace contains no events")
	}
	cats := map[string]int{}
	last := -1.0
	for _, e := range events {
		if e.Ph == "M" {
			continue // metadata events carry no timestamps
		}
		if e.Ts < last {
			t.Fatalf("timestamps not monotonic: %.3f after %.3f (%s)", e.Ts, last, e.Name)
		}
		last = e.Ts
		cats[e.Cat]++
		if e.Ph == "X" && e.Dur < 0 {
			t.Errorf("negative duration %f on %s", e.Dur, e.Name)
		}
	}
	for _, want := range []string{"compute", "push", "pull", "barrier"} {
		if cats[want] == 0 {
			t.Errorf("no %q spans in trace (got %v)", want, cats)
		}
	}
}
