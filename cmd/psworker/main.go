// Command psworker runs one real training worker against psserver shards.
//
// The worker trains an MLP on synthetic data (its interleaved shard of a
// shared dataset), pushing gradients to and pulling parameters from every
// shard each iteration.
//
// Usage:
//
//	psworker -servers 127.0.0.1:7070,127.0.0.1:7071 -id 0 -workers 4 \
//	         -sizes 784,512,512,10 -iterations 200 -batch 64
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"cynthia/internal/data"
	"cynthia/internal/nn"
	"cynthia/internal/ps"
)

func main() {
	var (
		servers    = flag.String("servers", "127.0.0.1:7070", "comma-separated PS shard addresses")
		id         = flag.Int("id", 0, "worker id")
		workers    = flag.Int("workers", 1, "total number of workers (for data sharding)")
		sizes      = flag.String("sizes", "784,512,512,10", "comma-separated MLP layer sizes")
		iterations = flag.Int("iterations", 200, "local iterations")
		batch      = flag.Int("batch", 64, "mini-batch size")
		samples    = flag.Int("samples", 4096, "synthetic dataset size")
		dataSeed   = flag.Int64("data-seed", 42, "dataset seed (must match across workers)")
		seed       = flag.Int64("seed", 1, "model init seed (must match psserver)")
	)
	flag.Parse()
	if err := run(*servers, *id, *workers, *sizes, *iterations, *batch, *samples, *dataSeed, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "psworker:", err)
		os.Exit(1)
	}
}

func run(servers string, id, workers int, sizesStr string, iterations, batch, samples int, dataSeed, seed int64) error {
	var sizes []int
	for _, p := range strings.Split(sizesStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return fmt.Errorf("bad layer size %q: %w", p, err)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) < 2 {
		return fmt.Errorf("need at least input and output sizes")
	}
	full, err := data.Synthetic(rand.New(rand.NewSource(dataSeed)), samples, sizes[0], sizes[len(sizes)-1], 4.0)
	if err != nil {
		return err
	}
	shard, err := full.Shard(id, workers)
	if err != nil {
		return err
	}
	replica, err := nn.NewMLP(sizes, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	start := time.Now()
	stats, err := ps.RunWorker(ps.WorkerConfig{
		ID:         id,
		Servers:    strings.Split(servers, ","),
		Model:      replica,
		Train:      shard,
		Batch:      batch,
		Iterations: iterations,
		Seed:       seed + int64(id)*7919,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	first, last := stats.Losses[0], stats.Losses[len(stats.Losses)-1]
	fmt.Printf("psworker %d: %d iterations in %s (%.1f ms/iter)\n",
		id, stats.Iterations, elapsed.Round(time.Millisecond),
		float64(elapsed.Milliseconds())/float64(stats.Iterations))
	fmt.Printf("  loss %.4f -> %.4f, %d bytes sent, %d bytes received\n",
		first, last, stats.BytesSent, stats.BytesReceived)
	fmt.Printf("  final shard accuracy: %.1f%%\n", replica.Accuracy(shard.X, shard.Labels)*100)
	return nil
}
