package main

import (
	"math/rand"
	"testing"

	"cynthia/internal/model"
	"cynthia/internal/nn"
	"cynthia/internal/ps"
)

// startShard brings up one real PS shard covering the full parameter
// vector of the worker's model configuration.
func startShard(t *testing.T, sizes []int, workers int, sync model.SyncMode, seed int64) string {
	t.Helper()
	ref, err := nn.NewMLP(sizes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]float64, ref.NumParams())
	if err := ref.FlattenParams(flat); err != nil {
		t.Fatal(err)
	}
	srv, err := ps.NewServer(ps.ServerConfig{Init: flat, Sync: sync, Workers: workers, LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return addr
}

func TestWorkerRunsAgainstRealShard(t *testing.T) {
	sizes := []int{16, 8, 4}
	addr := startShard(t, sizes, 1, model.ASP, 3)
	if err := run(addr, 0, 1, "16,8,4", 20, 16, 256, 11, 3); err != nil {
		t.Fatalf("worker run failed: %v", err)
	}
}

func TestWorkerRunValidation(t *testing.T) {
	if err := run("127.0.0.1:1", 0, 1, "bad", 10, 8, 64, 1, 1); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run("127.0.0.1:1", 0, 1, "16", 10, 8, 64, 1, 1); err == nil {
		t.Error("single layer accepted")
	}
	if err := run("127.0.0.1:1", 0, 1, "16,4", 10, 8, 64, 1, 1); err == nil {
		t.Error("unreachable server accepted")
	}
}
