package main

import (
	"encoding/json"
	"strings"
	"testing"

	"cynthia/internal/experiments"
)

func TestListPrintsEveryExperimentID(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	lines := strings.Fields(out.String())
	ids := experiments.IDs()
	if len(lines) != len(ids) {
		t.Fatalf("listed %d ids, registry has %d", len(lines), len(ids))
	}
	for i, id := range ids {
		if lines[i] != id {
			t.Errorf("line %d = %q, want %q", i, lines[i], id)
		}
	}
}

func TestRunSingleExperimentJSON(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-only", "table1", "-scale", "0.05", "-format", "json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	var tables []struct {
		ID     string     `json:"id"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &tables); err != nil {
		t.Fatalf("output is not the JSON table array: %v\n%s", err, out.String())
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatalf("experiment produced no table rows: %s", out.String())
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "no-such-figure"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr %q does not name the unknown experiment", errOut.String())
	}
}

func TestBadFlagFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestBadFormatFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "table1", "-scale", "0.05", "-format", "yaml"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}
