// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                # run everything at full scale
//	experiments -scale 0.1     # 10x shorter runs
//	experiments -only figure6  # one experiment
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cynthia/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args with its own FlagSet
// and returns the process exit code instead of calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale  = fs.Float64("scale", 1.0, "iteration-budget scale factor (1.0 = paper scale)")
		seed   = fs.Int64("seed", 1, "random seed")
		only   = fs.String("only", "", "run a single experiment id")
		list   = fs.Bool("list", false, "list experiment ids")
		format = fs.String("format", "text", "output format: text, csv, or json")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	var (
		tables []*experiments.Table
		err    error
	)
	if *only != "" {
		tables, err = experiments.Run(*only, cfg)
	} else {
		tables, err = experiments.RunAll(cfg)
	}
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	if err := experiments.WriteAll(stdout, tables, *format); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	return 0
}
