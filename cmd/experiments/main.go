// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                # run everything at full scale
//	experiments -scale 0.1     # 10x shorter runs
//	experiments -only figure6  # one experiment
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"

	"cynthia/internal/experiments"
)

func main() {
	var (
		scale  = flag.Float64("scale", 1.0, "iteration-budget scale factor (1.0 = paper scale)")
		seed   = flag.Int64("seed", 1, "random seed")
		only   = flag.String("only", "", "run a single experiment id")
		list   = flag.Bool("list", false, "list experiment ids")
		format = flag.String("format", "text", "output format: text, csv, or json")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	var (
		tables []*experiments.Table
		err    error
	)
	if *only != "" {
		tables, err = experiments.Run(*only, cfg)
	} else {
		tables, err = experiments.RunAll(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if err := experiments.WriteAll(os.Stdout, tables, *format); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
