package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cynthia/internal/cloud"
)

func newTestServer(t *testing.T, gpu bool) *httptest.Server {
	t.Helper()
	handler, _, _, _, _, err := setup(gpu, false, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func TestHealthAndEmptyCluster(t *testing.T) {
	srv := newTestServer(t, false)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %s", resp.Status)
	}
	var nodes, jobs []map[string]any
	getJSON(t, srv.URL+"/api/nodes", &nodes)
	getJSON(t, srv.URL+"/api/jobs", &jobs)
	if len(nodes) != 0 || len(jobs) != 0 {
		t.Errorf("fresh master reports %d nodes, %d jobs", len(nodes), len(jobs))
	}
}

// TestSubmitJobEndToEnd drives one synchronous submission through the
// HTTP API: the controller profiles, plans, provisions simulated
// instances, trains in ddnnsim, and the response carries the finished job.
func TestSubmitJobEndToEnd(t *testing.T) {
	srv := newTestServer(t, false)
	body := `{"workload": "mnist DNN", "deadline_sec": 3600, "loss_target": 0.2}`
	resp, err := http.Post(srv.URL+"/api/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /api/jobs: %s", resp.Status)
	}
	var job struct {
		ID          string  `json:"id"`
		Status      string  `json:"status"`
		Workers     int     `json:"workers"`
		PS          int     `json:"ps"`
		TrainingSec float64 `json:"training_sec"`
		CostUSD     float64 `json:"cost_usd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.Status != "succeeded" {
		t.Fatalf("job status %q, want succeeded", job.Status)
	}
	if job.Workers < 1 || job.PS < 1 || job.TrainingSec <= 0 || job.CostUSD <= 0 {
		t.Errorf("implausible job outcome: %+v", job)
	}

	var fetched map[string]any
	getJSON(t, srv.URL+"/api/jobs/"+job.ID, &fetched)
	if fetched["status"] != "succeeded" {
		t.Errorf("GET job %s status %v", job.ID, fetched["status"])
	}
	var events []map[string]any
	getJSON(t, srv.URL+"/api/events", &events)
	if len(events) == 0 {
		t.Error("no lifecycle events recorded for the submission")
	}
}

func TestSubmitRejectsBadPayloads(t *testing.T) {
	srv := newTestServer(t, false)
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed", `{`},
		{"unknown field", `{"workload": "mnist DNN", "deadline_sec": 1, "loss_target": 0.2, "extra": 1}`},
		{"missing workload", `{"deadline_sec": 3600, "loss_target": 0.2}`},
		{"unknown workload", `{"workload": "gpt-4", "deadline_sec": 3600, "loss_target": 0.2}`},
		{"bad goal", `{"workload": "mnist DNN", "deadline_sec": -5, "loss_target": 0.2}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/api/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %s, want 400", resp.Status)
			}
		})
	}
}

func TestGetMissingJobIs404(t *testing.T) {
	srv := newTestServer(t, false)
	resp, err := http.Get(srv.URL + "/api/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %s, want 404", resp.Status)
	}
}

// TestTimelineEndToEnd submits a job and reads its flight-recorder
// timeline back through the debug endpoint in all three formats.
func TestTimelineEndToEnd(t *testing.T) {
	srv := newTestServer(t, false)
	body := `{"workload": "mnist DNN", "deadline_sec": 3600, "loss_target": 0.2}`
	resp, err := http.Post(srv.URL+"/api/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /api/jobs: %s", resp.Status)
	}

	var tl struct {
		Job   string `json:"job"`
		Trace string `json:"trace"`
		Steps []struct {
			Type   string `json:"type"`
			Source string `json:"source"`
		} `json:"steps"`
	}
	getJSON(t, srv.URL+"/debug/jobs/job-1/timeline", &tl)
	if tl.Job != "job-1" || tl.Trace == "" || len(tl.Steps) == 0 {
		t.Fatalf("timeline = %+v", tl)
	}
	seen := map[string]bool{}
	for _, s := range tl.Steps {
		seen[s.Type] = true
	}
	for _, want := range []string{"job.submitted", "job.plan.chosen", "segment.start", "segment.end", "job.finished"} {
		if !seen[want] {
			t.Errorf("timeline missing %s event; have %v", want, seen)
		}
	}

	for _, format := range []string{"text", "chrome"} {
		r, err := http.Get(srv.URL + "/debug/jobs/job-1/timeline?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("timeline format=%s: %s", format, r.Status)
		}
	}
	r, err := http.Get(srv.URL + "/debug/jobs/ghost/timeline")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("missing job timeline: %s, want 404", r.Status)
	}
}

// TestPprofFlagMountsProfiles pins what -pprof adds: the net/http/pprof
// index appears on the debug mux, and the API keeps working beside it.
func TestPprofFlagMountsProfiles(t *testing.T) {
	handler, _, _, _, _, err := setup(false, true, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/goroutine", "/debug/pprof/block", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
	// Without the flag the profiles are absent.
	plain := newTestServer(t, false)
	resp, err := http.Get(plain.URL + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
}

// TestPlanEndpointServed pins that the plan service is wired into the
// served mux: a repeated quote comes back from the cache with no job
// registered.
func TestPlanEndpointServed(t *testing.T) {
	srv := newTestServer(t, false)
	body := `{"workload": "mnist DNN", "deadline_sec": 3600, "loss_target": 0.2}`
	var cache []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/api/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /api/plan: %s", resp.Status)
		}
		cache = append(cache, resp.Header.Get("X-Cache"))
	}
	if cache[0] != "miss" || cache[1] != "hit" {
		t.Errorf("X-Cache sequence = %v, want [miss hit]", cache)
	}
	var jobs []map[string]any
	getJSON(t, srv.URL+"/api/jobs", &jobs)
	if len(jobs) != 0 {
		t.Errorf("quotes registered %d jobs", len(jobs))
	}
}

// TestDrainAfterShutdown exercises the SIGTERM path's drain step: after
// the listener closes, queued work finishes and new submissions are
// refused.
func TestDrainAfterShutdown(t *testing.T) {
	handler, api, _, _, _, err := setup(false, false, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	body := `{"workload": "mnist DNN", "deadline_sec": 3600, "loss_target": 0.2}`
	resp, err := http.Post(srv.URL+"/api/jobs?wait=false", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %s", resp.Status)
	}
	if err := api.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The accepted job ran to completion during the drain.
	var job map[string]any
	getJSON(t, srv.URL+"/api/jobs/job-1", &job)
	if job["status"] != "succeeded" {
		t.Errorf("drained job status = %v, want succeeded", job["status"])
	}
	// Admission is closed for good.
	resp, err = http.Post(srv.URL+"/api/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("post-drain submit: %s, want 429", resp.Status)
	}
	srv.Close()
}

// TestStateDirRestartRecovers boots a durable master, runs a job to
// completion, shuts down cleanly, and boots a second master over the
// same state directory: the restarted control plane must serve the
// recovered job table and the full flight-recorder history.
func TestStateDirRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	handler, api, _, _, mgr, err := setup(false, false, dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	body := `{"workload": "mnist DNN", "deadline_sec": 3600, "loss_target": 0.2}`
	resp, err := http.Post(srv.URL+"/api/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /api/jobs: %s", resp.Status)
	}
	before := getBody(t, srv.URL+"/debug/journal")
	// Clean shutdown: drain, pin the final snapshot, release the WAL.
	if err := api.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	handler2, _, _, _, mgr2, err := setup(false, false, dir)
	if err != nil {
		t.Fatalf("restart over state dir: %v", err)
	}
	defer mgr2.Close()
	if !mgr2.HasState() {
		t.Fatal("restarted manager recovered no state")
	}
	srv2 := httptest.NewServer(handler2)
	defer srv2.Close()
	var jobs []map[string]any
	getJSON(t, srv2.URL+"/api/jobs", &jobs)
	if len(jobs) != 1 || jobs[0]["status"] != "succeeded" {
		t.Fatalf("recovered job table = %+v, want one succeeded job", jobs)
	}
	// The flight-recorder journal survives byte-for-byte: the restarted
	// ring is rebuilt from the WAL, so the canonical JSONL matches what
	// the first incarnation served.
	if after := getBody(t, srv2.URL+"/debug/journal"); after != before {
		t.Errorf("restart changed the journal: %d bytes recovered, %d before shutdown", len(after), len(before))
	}
	var tl struct {
		Steps []map[string]any `json:"steps"`
	}
	getJSON(t, srv2.URL+"/debug/jobs/job-1/timeline", &tl)
	if len(tl.Steps) == 0 {
		t.Error("recovered job has no timeline")
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGPUFlagSelectsExtendedCatalog pins what -gpu changes: the provider
// catalog grows from the paper's four CPU families to the extended set.
func TestGPUFlagSelectsExtendedCatalog(t *testing.T) {
	_, _, _, def, _, err := setup(false, false, "")
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, ext, _, err := setup(true, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if def.Len() != cloud.DefaultCatalog().Len() || ext.Len() != cloud.ExtendedCatalog().Len() {
		t.Errorf("catalog sizes %d/%d do not match the default/extended catalogs", def.Len(), ext.Len())
	}
	if ext.Len() <= def.Len() {
		t.Errorf("extended catalog (%d types) not larger than default (%d)", ext.Len(), def.Len())
	}
}
