// Command master runs the Cynthia control plane: the Kubernetes-like
// master with its HTTP API, wired to the simulated cloud provider.
//
// Usage:
//
//	master -addr 127.0.0.1:8080 [-gpu]
//
// Then drive it with cmd/cynthiactl or curl:
//
//	curl -X POST 127.0.0.1:8080/api/jobs \
//	  -d '{"workload": "cifar10 DNN", "deadline_sec": 5400, "loss_target": 0.8}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"cynthia/internal/cloud"
	"cynthia/internal/cluster"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8080", "listen address")
		gpu  = flag.Bool("gpu", false, "use the extended CPU+GPU catalog")
	)
	flag.Parse()
	if err := run(*addr, *gpu); err != nil {
		fmt.Fprintln(os.Stderr, "master:", err)
		os.Exit(1)
	}
}

// setup assembles the control plane — master, provider, controller, HTTP
// API — and returns the route handler plus the join credentials the
// banner prints. Split from run so tests can serve the handler from
// httptest instead of a real listener.
func setup(gpu bool) (http.Handler, *cluster.Master, *cloud.Catalog, error) {
	master, err := cluster.NewMaster()
	if err != nil {
		return nil, nil, nil, err
	}
	catalog := cloud.DefaultCatalog()
	if gpu {
		catalog = cloud.ExtendedCatalog()
	}
	provider := cloud.NewProvider(catalog, nil)
	controller := cluster.NewController(master, provider, nil, "")
	api := cluster.NewAPI(master, controller)
	return api.Handler(), master, catalog, nil
}

func run(addr string, gpu bool) error {
	handler, master, catalog, err := setup(gpu)
	if err != nil {
		return err
	}
	token, caHash := master.JoinCredentials()
	fmt.Printf("master: listening on %s (%d instance types)\n", addr, catalog.Len())
	fmt.Printf("master: nodes join with token %s, CA hash %s...\n", token, caHash[:23])
	return http.ListenAndServe(addr, handler)
}
