// Command master runs the Cynthia control plane: the Kubernetes-like
// master with its HTTP API, wired to the simulated cloud provider.
//
// Usage:
//
//	master -addr 127.0.0.1:8080 [-gpu]
//
// Then drive it with cmd/cynthiactl or curl:
//
//	curl -X POST 127.0.0.1:8080/api/jobs \
//	  -d '{"workload": "cifar10 DNN", "deadline_sec": 5400, "loss_target": 0.8}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cynthia/internal/cloud"
	"cynthia/internal/cluster"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		gpu     = flag.Bool("gpu", false, "use the extended CPU+GPU catalog")
		pprofOn = flag.Bool("pprof", false, "serve net/http/pprof profiles (CPU, heap, goroutine, block) under /debug/pprof/")
	)
	flag.Parse()
	if err := run(*addr, *gpu, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "master:", err)
		os.Exit(1)
	}
}

// setup assembles the control plane — master, provider, controller, HTTP
// API — and returns the route handler plus the join credentials the
// banner prints. Split from run so tests can serve the handler from
// httptest instead of a real listener. With pprofOn the debug mux also
// serves the net/http/pprof profiles (and enables block profiling).
func setup(gpu, pprofOn bool) (http.Handler, *cluster.API, *cluster.Master, *cloud.Catalog, error) {
	master, err := cluster.NewMaster()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	catalog := cloud.DefaultCatalog()
	if gpu {
		catalog = cloud.ExtendedCatalog()
	}
	provider := cloud.NewProvider(catalog, nil)
	// The flight recorder spans the whole control plane: the provider
	// appends instance lifecycle events to the master's journal, and
	// master-sourced events run on the provider clock.
	provider.SetJournal(master.Journal())
	master.SetJournal(master.Journal(), provider.Now)
	controller := cluster.NewController(master, provider, nil, "")
	api := cluster.NewAPI(master, controller)
	handler := http.Handler(api.Handler())
	if pprofOn {
		runtime.SetBlockProfileRate(1)
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	return handler, api, master, catalog, nil
}

// drainTimeout bounds how long shutdown waits for in-flight and queued
// jobs after the listener closes.
const drainTimeout = 30 * time.Second

func run(addr string, gpu, pprofOn bool) error {
	handler, api, master, catalog, err := setup(gpu, pprofOn)
	if err != nil {
		return err
	}
	token, caHash := master.JoinCredentials()
	fmt.Printf("master: listening on %s (%d instance types)\n", addr, catalog.Len())
	fmt.Printf("master: nodes join with token %s, CA hash %s...\n", token, caHash[:23])
	if pprofOn {
		fmt.Printf("master: pprof profiles on http://%s/debug/pprof/\n", addr)
	}

	// SIGTERM/SIGINT stop the listener, then drain: in-flight HTTP
	// requests finish, queued jobs run to completion (bounded), and the
	// plan service shuts down.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Println("master: shutting down, draining in-flight jobs")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := api.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("master: drained, bye")
	return nil
}
