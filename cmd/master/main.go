// Command master runs the Cynthia control plane: the Kubernetes-like
// master with its HTTP API, wired to the simulated cloud provider.
//
// Usage:
//
//	master -addr 127.0.0.1:8080 [-gpu] [-state-dir /var/lib/cynthia]
//
// With -state-dir the control plane is crash-durable: every
// flight-recorder event is written ahead to a segmented WAL and the
// world is snapshotted at each durability barrier. A restarted master
// recovers the snapshot plus the log tail, re-enqueues queued jobs, and
// resumes in-flight jobs from their last barrier.
//
// Then drive it with cmd/cynthiactl or curl:
//
//	curl -X POST 127.0.0.1:8080/api/jobs \
//	  -d '{"workload": "cifar10 DNN", "deadline_sec": 5400, "loss_target": 0.8}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cynthia/internal/cloud"
	"cynthia/internal/cluster"
	"cynthia/internal/cluster/replay"
	"cynthia/internal/obs"
	"cynthia/internal/obs/journal"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		gpu      = flag.Bool("gpu", false, "use the extended CPU+GPU catalog")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof profiles (CPU, heap, goroutine, block) under /debug/pprof/")
		stateDir = flag.String("state-dir", "", "durable state directory (WAL + snapshots); restart recovers and resumes jobs from it")
	)
	flag.Parse()
	if err := run(*addr, *gpu, *pprofOn, *stateDir); err != nil {
		fmt.Fprintln(os.Stderr, "master:", err)
		os.Exit(1)
	}
}

// setup assembles the control plane — master, provider, controller, HTTP
// API — and returns the route handler plus the join credentials the
// banner prints. Split from run so tests can serve the handler from
// httptest instead of a real listener. With pprofOn the debug mux also
// serves the net/http/pprof profiles (and enables block profiling).
//
// A non-empty stateDir makes the control plane durable: the journal
// writes ahead to a WAL in that directory, the controller snapshots the
// world at durability barriers, and — when the directory already holds
// state — the world is rebuilt from it, queued jobs are re-enqueued,
// and in-flight jobs resume in the background. The returned manager is
// nil without a state dir; with one, the caller owns its final
// snapshot and Close on shutdown.
func setup(gpu, pprofOn bool, stateDir string) (http.Handler, *cluster.API, *cluster.Master, *cloud.Catalog, *replay.Manager, error) {
	master, err := cluster.NewMaster()
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	catalog := cloud.DefaultCatalog()
	if gpu {
		catalog = cloud.ExtendedCatalog()
	}
	var (
		mgr   *replay.Manager
		clock cloud.Clock
	)
	if stateDir != "" {
		mgr, err = replay.Open(stateDir, replay.Options{Mode: replay.ModeResume})
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		if snap := mgr.Snapshot(); snap != nil {
			// Resume the provider clock from the snapshot instead of
			// rewinding to zero, which would re-bill every instance.
			clock = cloud.WallClockFrom(snap.Provider.ClockSec)
		}
	}
	provider := cloud.NewProvider(catalog, clock)
	if mgr != nil {
		// Durable flight recorder: every event is framed into the WAL by
		// the manager sink before the in-memory ring can evict it.
		master.SetJournal(journal.New(journal.DefaultCapacity, journal.WithSink(mgr)), nil)
	}
	// The flight recorder spans the whole control plane: the provider
	// appends instance lifecycle events to the master's journal, and
	// master-sourced events run on the provider clock.
	provider.SetJournal(master.Journal())
	master.SetJournal(master.Journal(), provider.Now)
	controller := cluster.NewController(master, provider, nil, "")
	if mgr != nil {
		controller.Durability = mgr
		mgr.Attach(controller, master, provider, master.Journal())
		resume, queued, err := mgr.Rebuild()
		if err != nil {
			mgr.Close()
			return nil, nil, nil, nil, nil, err
		}
		for _, id := range queued {
			if err := controller.Requeue(id); err != nil {
				obs.Debugf("master: requeue %s after restart: %v", id, err)
			}
		}
		for _, id := range resume {
			id := id
			// ResumeJob blocks until the job reaches a terminal state; the
			// outcome lands on the job record like any queued run's.
			go func() { _, _ = controller.ResumeJob(id) }()
		}
	}
	api := cluster.NewAPI(master, controller)
	handler := http.Handler(api.Handler())
	if pprofOn {
		runtime.SetBlockProfileRate(1)
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	return handler, api, master, catalog, mgr, nil
}

// drainTimeout bounds how long shutdown waits for in-flight and queued
// jobs after the listener closes.
const drainTimeout = 30 * time.Second

func run(addr string, gpu, pprofOn bool, stateDir string) error {
	handler, api, master, catalog, mgr, err := setup(gpu, pprofOn, stateDir)
	if err != nil {
		return err
	}
	token, caHash := master.JoinCredentials()
	fmt.Printf("master: listening on %s (%d instance types)\n", addr, catalog.Len())
	fmt.Printf("master: nodes join with token %s, CA hash %s...\n", token, caHash[:23])
	if pprofOn {
		fmt.Printf("master: pprof profiles on http://%s/debug/pprof/\n", addr)
	}
	if mgr != nil {
		if mgr.HasState() {
			fmt.Printf("master: recovered durable state from %s (%d journaled events)\n", stateDir, len(mgr.RecoveredEvents()))
		} else {
			fmt.Printf("master: durable state in %s\n", stateDir)
		}
	}

	// SIGTERM/SIGINT stop the listener, then drain: in-flight HTTP
	// requests finish, queued jobs run to completion (bounded), and the
	// plan service shuts down.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Println("master: shutting down, draining in-flight jobs")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := api.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if mgr != nil {
		// Pin the drained world so the next boot restarts clean instead of
		// replaying the tail since the last barrier snapshot.
		if err := mgr.SnapshotNow(); err != nil {
			fmt.Fprintln(os.Stderr, "master: final snapshot:", err)
		}
		if err := mgr.Close(); err != nil {
			return fmt.Errorf("closing state dir: %w", err)
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("master: drained, bye")
	return nil
}
