// Command psserver runs one real parameter-server shard over TCP.
//
// The shard owns slice k of the flat parameter vector of an MLP with the
// given layer sizes; workers (cmd/psworker) connect, push gradients, and
// pull parameters. BSP mode barriers each round across -workers workers;
// ASP applies every push immediately.
//
// Usage:
//
//	psserver -addr :7070 -sizes 784,512,512,10 -shard 0 -shards 2 -workers 4 -sync bsp -lr 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cynthia/internal/model"
	"cynthia/internal/nn"
	"cynthia/internal/obs"
	"cynthia/internal/ps"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		sizes     = flag.String("sizes", "784,512,512,10", "comma-separated MLP layer sizes")
		shard     = flag.Int("shard", 0, "this shard's index")
		shards    = flag.Int("shards", 1, "total number of shards")
		workers   = flag.Int("workers", 1, "number of workers (BSP barrier width)")
		sync      = flag.String("sync", "bsp", "synchronization: bsp or asp")
		lr        = flag.Float64("lr", 0.1, "learning rate")
		optimizer = flag.String("optimizer", "sgd", "update rule: sgd, momentum, or adam")
		staleness = flag.Int("staleness", 0, "SSP staleness bound for asp (0 = unbounded)")
		seed      = flag.Int64("seed", 1, "parameter initialization seed (must match workers)")
		metrics   = flag.String("metrics", "", "serve /metrics and /debug/snapshot on this address (empty = disabled)")
		pprofOn   = flag.Bool("pprof", false, "also serve net/http/pprof profiles under /debug/pprof/ on the -metrics address")
	)
	flag.Parse()
	if err := run(*addr, *sizes, *shard, *shards, *workers, *sync, *optimizer, *staleness, *lr, *seed, *metrics, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "psserver:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad layer size %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// serveMetrics exposes the registry's /metrics and /debug/snapshot
// endpoints on addr in a background goroutine, plus the net/http/pprof
// profiles when pprofOn is set. It returns the bound address and a closer
// for the listener.
func serveMetrics(addr string, reg *obs.Registry, pprofOn bool) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	handler := http.Handler(obs.Mux(reg))
	if pprofOn {
		runtime.SetBlockProfileRate(1)
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			obs.Warnf("psserver: metrics server: %v", err)
		}
	}()
	return ln.Addr().String(), srv.Close, nil
}

func run(addr, sizesStr string, shard, shards, workers int, syncStr, optName string, staleness int, lr float64, seed int64, metricsAddr string, pprofOn bool) error {
	sizes, err := parseSizes(sizesStr)
	if err != nil {
		return err
	}
	var mode model.SyncMode
	switch strings.ToLower(syncStr) {
	case "bsp":
		mode = model.BSP
	case "asp":
		mode = model.ASP
	default:
		return fmt.Errorf("unknown sync mode %q", syncStr)
	}
	if shard < 0 || shard >= shards {
		return fmt.Errorf("shard %d out of range [0,%d)", shard, shards)
	}
	// Initialize the full parameter vector from the shared seed and carve
	// out this shard.
	ref, err := nn.NewMLP(sizes, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	flat := make([]float64, ref.NumParams())
	if err := ref.FlattenParams(flat); err != nil {
		return err
	}
	lo, hi := ps.ShardRange(ref.NumParams(), shard, shards)

	opt, err := ps.NewOptimizer(optName, lr)
	if err != nil {
		return err
	}
	srv, err := ps.NewServer(ps.ServerConfig{
		Init:         flat[lo:hi],
		Sync:         mode,
		Workers:      workers,
		LR:           lr,
		Optimizer:    opt,
		MaxStaleness: staleness,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("psserver: shard %d/%d (%d params) listening on %s, %s, %d workers, lr=%g\n",
		shard, shards, hi-lo, bound, mode, workers, lr)
	if metricsAddr != "" {
		mBound, closeMetrics, err := serveMetrics(metricsAddr, obs.Default(), pprofOn)
		if err != nil {
			// Observability must not take the shard down: warn and serve
			// parameters anyway.
			obs.Warnf("psserver: cannot serve metrics on %s: %v", metricsAddr, err)
		} else {
			defer closeMetrics()
			fmt.Printf("psserver: metrics on http://%s/metrics (snapshot at /debug/snapshot)\n", mBound)
			if pprofOn {
				fmt.Printf("psserver: pprof profiles on http://%s/debug/pprof/\n", mBound)
			}
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	awaitShutdown(srv, sig, drainTimeout)
	return nil
}

// drainTimeout bounds how long shutdown waits for live worker
// connections to finish their rounds after the listener closes.
const drainTimeout = 30 * time.Second

// awaitShutdown blocks until the first signal, then shuts down
// gracefully: the listener closes so no new worker can connect, live
// workers get up to timeout to finish and disconnect on their own, and
// only then are the leftovers torn down. A second signal cuts the drain
// short and forces immediate teardown.
func awaitShutdown(srv *ps.Server, sig <-chan os.Signal, timeout time.Duration) {
	<-sig
	fmt.Println("psserver: signal received, draining workers (second signal forces shutdown)")
	dctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	go func() {
		select {
		case <-sig:
			cancel()
		case <-dctx.Done():
		}
	}()
	if err := srv.Drain(dctx); err != nil {
		obs.Warnf("psserver: drain cut short: %v", err)
	}
	stats := srv.Stats()
	srv.Close()
	fmt.Printf("psserver: shutting down after %d pushes, %d applies, %d bytes in, %d bytes out\n",
		stats.Pushes, stats.Applies, stats.BytesIn, stats.BytesOut)
}
