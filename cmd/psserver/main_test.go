package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"cynthia/internal/obs"
	"cynthia/internal/ps"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("784, 512,10")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 784 || got[2] != 10 {
		t.Errorf("parseSizes = %v", got)
	}
	if _, err := parseSizes("784,abc"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("127.0.0.1:0", "784,10", 2, 2, 1, "bsp", "sgd", 0, 0.1, 1, "", false); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run("127.0.0.1:0", "784,10", 0, 1, 1, "ssp", "sgd", 0, 0.1, 1, "", false); err == nil {
		t.Error("unknown sync accepted")
	}
	if err := run("127.0.0.1:0", "bad", 0, 1, 1, "bsp", "sgd", 0, 0.1, 1, "", false); err == nil {
		t.Error("bad sizes accepted")
	}
}

func TestRunRejectsBadOptimizer(t *testing.T) {
	if err := run("127.0.0.1:0", "784,10", 0, 1, 1, "bsp", "lamb", 0, 0.1, 1, "", false); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

// startShard boots a one-worker shard on an ephemeral port for the
// shutdown tests.
func startShard(t *testing.T) (*ps.Server, string) {
	t.Helper()
	srv, err := ps.NewServer(ps.ServerConfig{Init: make([]float64, 8), Workers: 1, LR: 0.1, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, bound
}

// TestAwaitShutdownDrainsWorkers pins the graceful path: after the first
// signal no new worker can connect, a live connection keeps the server
// up, and shutdown completes once the worker disconnects on its own.
func TestAwaitShutdownDrainsWorkers(t *testing.T) {
	srv, bound := startShard(t)
	conn, err := net.Dial("tcp", bound)
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 2)
	done := make(chan struct{})
	go func() {
		awaitShutdown(srv, sig, 5*time.Second)
		close(done)
	}()
	sig <- os.Interrupt
	// The listener must close promptly; the live connection must survive.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", bound, 100*time.Millisecond)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after the drain signal")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("shutdown completed with a live worker connection")
	case <-time.After(100 * time.Millisecond):
	}
	conn.Close() // worker finishes; the drain completes
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown did not complete after the last worker left")
	}
}

// TestAwaitShutdownSecondSignalForces pins the force path: a second
// signal cuts the drain short even with a worker still connected.
func TestAwaitShutdownSecondSignalForces(t *testing.T) {
	srv, bound := startShard(t)
	conn, err := net.Dial("tcp", bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sig := make(chan os.Signal, 2)
	done := make(chan struct{})
	go func() {
		awaitShutdown(srv, sig, time.Hour) // only the second signal can end this
		close(done)
	}()
	sig <- os.Interrupt
	time.Sleep(50 * time.Millisecond)
	sig <- os.Interrupt
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not force shutdown")
	}
}

// TestServeMetrics spins up a PS shard's registry behind serveMetrics and
// checks the scrape includes the server's counter families.
func TestServeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := ps.NewServer(ps.ServerConfig{Init: make([]float64, 8), Workers: 1, LR: 0.1, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	addr, closer, err := serveMetrics("127.0.0.1:0", reg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	text := get("/metrics")
	for _, want := range []string{"cynthia_ps_push_total", "cynthia_ps_push_bytes_total", "cynthia_ps_push_latency_seconds_bucket"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	snap := get("/debug/snapshot")
	if !strings.Contains(snap, "cynthia_ps_push_total") {
		t.Errorf("/debug/snapshot missing cynthia_ps_push_total: %s", snap)
	}
}

// TestServeMetricsPprof pins the -pprof wiring: the profile index mounts
// beside /metrics, and stays absent without the flag.
func TestServeMetricsPprof(t *testing.T) {
	status := func(pprofOn bool, path string) int {
		t.Helper()
		addr, closer, err := serveMetrics("127.0.0.1:0", obs.NewRegistry(), pprofOn)
		if err != nil {
			t.Fatal(err)
		}
		defer closer()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(true, "/debug/pprof/heap"); got != http.StatusOK {
		t.Errorf("pprof heap with -pprof: status %d", got)
	}
	if got := status(true, "/metrics"); got != http.StatusOK {
		t.Errorf("/metrics with -pprof: status %d", got)
	}
	if got := status(false, "/debug/pprof/heap"); got == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
}
