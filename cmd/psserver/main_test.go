package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("784, 512,10")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 784 || got[2] != 10 {
		t.Errorf("parseSizes = %v", got)
	}
	if _, err := parseSizes("784,abc"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("127.0.0.1:0", "784,10", 2, 2, 1, "bsp", "sgd", 0, 0.1, 1); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run("127.0.0.1:0", "784,10", 0, 1, 1, "ssp", "sgd", 0, 0.1, 1); err == nil {
		t.Error("unknown sync accepted")
	}
	if err := run("127.0.0.1:0", "bad", 0, 1, 1, "bsp", "sgd", 0, 0.1, 1); err == nil {
		t.Error("bad sizes accepted")
	}
}

func TestRunRejectsBadOptimizer(t *testing.T) {
	if err := run("127.0.0.1:0", "784,10", 0, 1, 1, "bsp", "lamb", 0, 0.1, 1); err == nil {
		t.Error("unknown optimizer accepted")
	}
}
