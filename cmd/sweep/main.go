// Command sweep explores a provisioning space in the simulator: the cross
// product of workloads, instance types, worker counts, and PS counts, run
// concurrently, with training time / utilization / cost per point.
//
// Usage:
//
//	sweep -workloads "mnist DNN" -types m4.xlarge -workers 1,2,4,8 -ps 1,2 -iterations 300
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cynthia/internal/cloud"
	"cynthia/internal/model"
	"cynthia/internal/sweep"
)

func main() {
	var (
		workloads  = flag.String("workloads", "mnist DNN", "comma-separated workload names")
		types      = flag.String("types", cloud.M4XLarge, "comma-separated instance types")
		workers    = flag.String("workers", "1,2,4,8", "comma-separated worker counts")
		ps         = flag.String("ps", "1", "comma-separated PS counts")
		iterations = flag.Int("iterations", 300, "iterations per run")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*workloads, *types, *workers, *ps, *iterations, *parallel, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(workloadList, typeList, workerList, psList string, iterations, parallel int, seed int64) error {
	var ws []*model.Workload
	for _, name := range strings.Split(workloadList, ",") {
		w, err := model.WorkloadByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	catalog := cloud.ExtendedCatalog()
	var ts []cloud.InstanceType
	for _, name := range strings.Split(typeList, ",") {
		t, err := catalog.Lookup(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		ts = append(ts, t)
	}
	workers, err := parseInts(workerList)
	if err != nil {
		return err
	}
	ps, err := parseInts(psList)
	if err != nil {
		return err
	}

	points := sweep.Grid(ws, ts, workers, ps, iterations, seed)
	fmt.Printf("sweeping %d configurations (%d iterations each)...\n\n", len(points), iterations)
	outcomes := sweep.Run(points, parallel)

	fmt.Printf("%-36s %12s %10s %10s %10s %10s\n",
		"configuration", "time(s)", "s/iter", "wkCPU", "psNIC", "cost($)")
	for _, oc := range outcomes {
		if oc.Err != nil {
			fmt.Printf("%-36s ERROR: %v\n", oc.Point.Label, oc.Err)
			continue
		}
		r := oc.Result
		spec := oc.Point.Cluster
		cost := spec.HourlyCost() * r.TrainingTime / 3600
		fmt.Printf("%-36s %12.1f %10.3f %9.1f%% %9.1f%% %10.3f\n",
			oc.Point.Label, r.TrainingTime, r.MeanIterTime,
			r.MeanWorkerCPUUtil()*100, r.PSNICUtil[0]*100, cost)
	}
	if best, err := sweep.Best(outcomes); err == nil {
		fmt.Printf("\nfastest: %s (%.1fs)\n", best.Point.Label, best.Result.TrainingTime)
	}
	return nil
}
