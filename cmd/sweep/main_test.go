package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad integer accepted")
	}
}

func TestRunSweep(t *testing.T) {
	if err := run("mnist DNN", "m4.xlarge", "1,2", "1", 60, 2, 1); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
}

func TestRunSweepErrors(t *testing.T) {
	if err := run("NoSuchNet", "m4.xlarge", "1", "1", 10, 1, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("mnist DNN", "z9.huge", "1", "1", 10, 1, 1); err == nil {
		t.Error("unknown type accepted")
	}
	if err := run("mnist DNN", "m4.xlarge", "x", "1", 10, 1, 1); err == nil {
		t.Error("bad workers accepted")
	}
	if err := run("mnist DNN", "m4.xlarge", "1", "y", 10, 1, 1); err == nil {
		t.Error("bad ps accepted")
	}
}
