// Command planload drives POST /api/plan with a skewed repeated-request
// mix and reports throughput, latency quantiles, and cache outcomes —
// the client's-eye view of the plan service.
//
// Usage:
//
//	planload                          # in-process master, 64 clients, 5s
//	planload -server 127.0.0.1:8080   # against a running master
//	planload -concurrency 128 -duration 10s -seed 7
//	planload -nocache                 # in-process only: bypass the cache
//	planload -json out.json           # machine-readable summary
//
// The mix is deliberately skewed (a few hot planning questions, a long
// cool tail) so cache hits, coalescing, and misses all occur, like a
// tenant population re-quoting the same workloads against a live
// catalog.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"cynthia/internal/cloud"
	"cynthia/internal/cluster"
	"cynthia/internal/plan/service"
)

func main() {
	var (
		server      = flag.String("server", "", "master address (empty runs an in-process master)")
		concurrency = flag.Int("concurrency", 64, "concurrent clients")
		duration    = flag.Duration("duration", 5*time.Second, "how long to drive load")
		seed        = flag.Int64("seed", 1, "mix-selection seed")
		nocache     = flag.Bool("nocache", false, "bypass the plan cache (in-process only): every request pays a full search")
		jsonOut     = flag.String("json", "", "also write the summary as JSON to this file")
	)
	flag.Parse()
	if err := run(*server, *concurrency, *duration, *seed, *nocache, *jsonOut, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "planload:", err)
		os.Exit(1)
	}
}

// question is one entry of the skewed mix: a planning payload and its
// relative weight.
type question struct {
	body   string
	weight int
}

func mix() []question {
	payload := func(w string, deadline float64, loss float64) string {
		b, _ := json.Marshal(map[string]any{
			"workload": w, "deadline_sec": deadline, "loss_target": loss,
		})
		return string(b)
	}
	// Two hot questions, a warm pair, and a cool tail of four: roughly
	// 60/25/15 of the traffic.
	return []question{
		{payload("cifar10 DNN", 5400, 0.8), 30},
		{payload("mnist DNN", 1800, 0.2), 30},
		{payload("cifar10 DNN", 7200, 0.8), 13},
		{payload("mnist DNN", 3600, 0.2), 12},
		{payload("cifar10 DNN", 9000, 0.8), 4},
		{payload("cifar10 DNN", 10800, 0.8), 4},
		{payload("mnist DNN", 5400, 0.2), 4},
		{payload("mnist DNN", 7200, 0.2), 3},
	}
}

// Summary is the machine-readable result (-json).
type Summary struct {
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Plans       int     `json:"plans"`
	Errors      int     `json:"errors"`
	PlansPerSec float64 `json:"plans_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Hits        int     `json:"hits"`
	Misses      int     `json:"misses"`
	Coalesced   int     `json:"coalesced"`
	Throttled   int     `json:"throttled"`
	HitRatio    float64 `json:"hit_ratio"`
}

func run(server string, concurrency int, duration time.Duration, seed int64, nocache bool, jsonOut string, out *os.File) error {
	if concurrency < 1 {
		return fmt.Errorf("concurrency must be at least 1")
	}
	base := "http://" + server
	if server == "" {
		srv, err := inprocess(nocache)
		if err != nil {
			return err
		}
		defer srv.Close()
		base = srv.URL
	} else if nocache {
		return fmt.Errorf("-nocache only applies to the in-process master")
	}

	qs := mix()
	var weighted []string
	for _, q := range qs {
		for i := 0; i < q.weight; i++ {
			weighted = append(weighted, q.body)
		}
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        concurrency * 2,
		MaxIdleConnsPerHost: concurrency * 2,
	}}
	type shard struct {
		latencies []time.Duration
		outcomes  map[string]int
		errors    int
		throttled int
	}
	shards := make([]shard, concurrency)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			sh := &shards[i]
			sh.outcomes = map[string]int{}
			for time.Now().Before(deadline) {
				body := weighted[rng.Intn(len(weighted))]
				t0 := time.Now()
				resp, err := client.Post(base+"/api/plan", "application/json", strings.NewReader(body))
				if err != nil {
					sh.errors++
					continue
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					sh.latencies = append(sh.latencies, time.Since(t0))
					sh.outcomes[resp.Header.Get("X-Cache")]++
				case resp.StatusCode == http.StatusTooManyRequests:
					sh.throttled++
				default:
					sh.errors++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	outcomes := map[string]int{}
	errors, throttled := 0, 0
	for i := range shards {
		all = append(all, shards[i].latencies...)
		for k, v := range shards[i].outcomes {
			outcomes[k] += v
		}
		errors += shards[i].errors
		throttled += shards[i].throttled
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	s := Summary{
		Concurrency: concurrency,
		DurationSec: elapsed.Seconds(),
		Plans:       len(all),
		Errors:      errors,
		Throttled:   throttled,
		Hits:        outcomes["hit"],
		Misses:      outcomes["miss"],
		Coalesced:   outcomes["coalesced"],
	}
	if elapsed > 0 {
		s.PlansPerSec = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		s.P50Ms = quantile(all, 0.50)
		s.P99Ms = quantile(all, 0.99)
		s.HitRatio = float64(s.Hits) / float64(len(all))
	}

	fmt.Fprintf(out, "planload: %d clients for %.1fs against %s\n", concurrency, elapsed.Seconds(), base)
	fmt.Fprintf(out, "  plans       %d (%.0f/s), %d throttled, %d errors\n", s.Plans, s.PlansPerSec, s.Throttled, s.Errors)
	fmt.Fprintf(out, "  latency     p50 %.3fms  p99 %.3fms\n", s.P50Ms, s.P99Ms)
	fmt.Fprintf(out, "  cache       %d hit / %d miss / %d coalesced (%.1f%% hits)\n",
		s.Hits, s.Misses, s.Coalesced, 100*s.HitRatio)
	if jsonOut != "" {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if s.Plans == 0 {
		return fmt.Errorf("no successful plans (errors=%d, throttled=%d)", errors, throttled)
	}
	return nil
}

// quantile reads the q-th quantile (0..1) in milliseconds from sorted
// latencies.
func quantile(sorted []time.Duration, q float64) float64 {
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// inprocess assembles a full master (simulated provider, controller,
// API) behind an httptest listener, optionally with the plan cache
// bypassed so every request pays a full Theorem 4.1 search.
func inprocess(nocache bool) (*httptest.Server, error) {
	master, err := cluster.NewMaster()
	if err != nil {
		return nil, err
	}
	provider := cloud.NewProvider(cloud.DefaultCatalog(), nil)
	provider.SetJournal(master.Journal())
	master.SetJournal(master.Journal(), provider.Now)
	controller := cluster.NewController(master, provider, nil, "")
	var opts []cluster.APIOption
	if nocache {
		opts = append(opts, cluster.WithPlanService(service.New(service.Config{
			Catalog:       provider.Catalog(),
			CacheCapacity: -1,
		})))
	}
	api := cluster.NewAPI(master, controller, opts...)
	return httptest.NewServer(api.Handler()), nil
}
