package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSmoke drives a short in-process run and checks the summary: on a
// repeated mix nearly everything after the first ask of each question
// is a cache hit.
func TestSmoke(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "planload.json")
	if err := run("", 8, 300*time.Millisecond, 1, false, jsonPath, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Plans == 0 || s.Errors > 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Hits+s.Misses+s.Coalesced != s.Plans {
		t.Errorf("outcomes do not add up: %+v", s)
	}
	if s.HitRatio < 0.5 {
		t.Errorf("hit ratio %.2f on a repeated mix, want >= 0.5", s.HitRatio)
	}
	if s.P50Ms <= 0 || s.P99Ms < s.P50Ms {
		t.Errorf("implausible quantiles: %+v", s)
	}
}

// TestNoCacheSmoke pins the -nocache reference path: every request
// searches, so there are no hits by construction.
func TestNoCacheSmoke(t *testing.T) {
	if err := run("", 4, 150*time.Millisecond, 1, true, "", os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run("", 0, time.Millisecond, 1, false, "", os.Stdout); err == nil {
		t.Error("concurrency 0 accepted")
	}
	if err := run("127.0.0.1:1", 1, time.Millisecond, 1, true, "", os.Stdout); err == nil {
		t.Error("-nocache with -server accepted")
	}
}
