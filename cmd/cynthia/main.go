// Command cynthia is the provisioning CLI: given a Table 1 workload, a
// training deadline, and a target loss, it profiles the workload on a
// baseline worker, computes the cost-efficient provisioning plan
// (Algorithm 1), and optionally validates the plan in the training
// simulator.
//
// Usage:
//
//	cynthia -workload "cifar10 DNN" -deadline 5400 -loss 0.8 \
//	        [-predictor cynthia|optimus|paleo] [-provisioner cynthia|optimus-mg] \
//	        [-parallel N] [-plan-timeout 5s] [-validate]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cynthia/internal/baseline"
	"cynthia/internal/cloud"
	"cynthia/internal/cloud/pricing"
	"cynthia/internal/cluster"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/model"
	"cynthia/internal/obs/journal"
	"cynthia/internal/perf"
	"cynthia/internal/plan"
	"cynthia/internal/profile"
)

func main() {
	var (
		workloadName = flag.String("workload", "cifar10 DNN", "Table 1 workload name")
		workloadFile = flag.String("workload-file", "", "JSON file describing a custom workload (overrides -workload)")
		deadline     = flag.Float64("deadline", 5400, "training deadline in seconds")
		lossTarget   = flag.Float64("loss", 0.8, "target training loss")
		baseName     = flag.String("baseline", cloud.M4XLarge, "profiling baseline instance type")
		predictor    = flag.String("predictor", "cynthia", "performance model: cynthia, optimus, or paleo")
		provisioner  = flag.String("provisioner", "cynthia", "planning strategy: cynthia (Algorithm 1) or optimus-mg (marginal gain)")
		parallel     = flag.Int("parallel", 0, "instance types scanned concurrently (0 = GOMAXPROCS, 1 = serial)")
		planTimeout  = flag.Duration("plan-timeout", 0, "abort the candidate search after this long (0 = no limit)")
		validate     = flag.Bool("validate", false, "simulate the plan and report the actual training time")
		list         = flag.Bool("list", false, "list available workloads and instance types")
		faultRate    = flag.Float64("fault-rate", 0, "probability that an instance is spot-preempted during the run (enables the controller pipeline)")
		preemptAt    = flag.Float64("preempt-at", 0, "preempt one instance at this simulated second (enables the controller pipeline)")
		seed         = flag.Int64("seed", 0, "fault-injection and simulation seed")
		noRecovery   = flag.Bool("no-recovery", false, "fail the job on the first preemption instead of recovering")
		timeline     = flag.Bool("timeline", false, "print the job's flight-recorder timeline after the run (controller pipeline only)")
		spot         = flag.Bool("spot", false, "bid on the simulated spot market and re-plan at price change-points (enables the controller pipeline)")
		traceFile    = flag.String("trace", "", "spot price-trace JSON file (a pricing.TraceSet); empty generates a mean-reverting market from -seed")
		bidStrategy  = flag.String("bid-strategy", "balanced", "spot bidding posture: aggressive, balanced, or conservative")
	)
	flag.Parse()
	if *faultRate > 0 || *preemptAt > 0 || *spot {
		fi := faultInjection{Rate: *faultRate, PreemptAt: *preemptAt, Seed: *seed, NoRecovery: *noRecovery, Timeline: *timeline,
			Spot: *spot, TraceFile: *traceFile, BidStrategy: *bidStrategy}
		if err := runControlled(*workloadName, *workloadFile, *deadline, *lossTarget, fi); err != nil {
			fmt.Fprintln(os.Stderr, "cynthia:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*workloadName, *workloadFile, *deadline, *lossTarget, *baseName, *predictor,
		*provisioner, *parallel, *planTimeout, *validate, *list); err != nil {
		fmt.Fprintln(os.Stderr, "cynthia:", err)
		os.Exit(1)
	}
}

// faultInjection bundles the fault-mode and spot-market flags.
type faultInjection struct {
	Rate        float64
	PreemptAt   float64
	Seed        int64
	NoRecovery  bool
	Timeline    bool
	Spot        bool
	TraceFile   string
	BidStrategy string
}

// loadTraces reads the -trace file, or generates a deterministic
// mean-reverting market over the catalog's types from the run seed.
func loadTraces(path string, seed int64, catalog *cloud.Catalog) (*pricing.TraceSet, error) {
	if path != "" {
		return pricing.LoadTraceSet(path)
	}
	od := make(map[string]float64)
	for _, t := range catalog.Types() {
		od[t.Name] = t.PricePerHour
	}
	return pricing.GenerateSet("generated", od, pricing.GenSpec{
		Kind: "mean-revert", Seed: seed, HorizonSec: 7200, StepSec: 60,
		Base: 0.55, Volatility: 0.15, Min: 0.30, Max: 0.95,
	})
}

// runControlled drives the full controller pipeline — master, simulated
// provider with fault injection, recovery state machine — instead of the
// plan-only path, and reports how the job fared under failures.
func runControlled(workloadName, workloadFile string, deadline, lossTarget float64, fi faultInjection) error {
	w, err := loadWorkload(workloadName, workloadFile)
	if err != nil {
		return err
	}
	master, err := cluster.NewMaster()
	if err != nil {
		return err
	}
	// The provider runs on a manually advanced clock tied to simulated
	// time, so -preempt-at means simulated seconds into the run.
	now := new(float64)
	provider := cloud.NewProvider(cloud.DefaultCatalog(), func() float64 { return *now })
	// The flight recorder correlates the whole run: instance lifecycle
	// events from the provider land in the master's journal next to the
	// controller, planner, and simulator events.
	provider.SetJournal(master.Journal())
	master.SetJournal(master.Journal(), provider.Now)
	provider.SetFaultPlan(cloud.FaultPlan{
		Seed:          fi.Seed,
		PreemptRate:   fi.Rate,
		PreemptMinSec: 0,
		PreemptMaxSec: deadline,
		PreemptAtSec:  fi.PreemptAt,
	})
	ctl := cluster.NewController(master, provider, nil, "")
	ctl.AdvanceClock = func(dt float64) { *now += dt }
	ctl.SimSeed = fi.Seed
	ctl.Recovery.Disabled = fi.NoRecovery
	if fi.Spot {
		strat, err := pricing.ParseStrategy(fi.BidStrategy)
		if err != nil {
			return err
		}
		set, err := loadTraces(fi.TraceFile, fi.Seed, provider.Catalog())
		if err != nil {
			return err
		}
		m, err := cloud.NewMarket(provider.Catalog(), set)
		if err != nil {
			return err
		}
		provider.SetMarket(m)
		ctl.Elastic = cluster.ElasticConfig{Enabled: true, Market: m, Strategy: strat}
		fmt.Printf("spot market: %d price traces (%s), %s bidding\n",
			len(set.Traces), set.Name, strat)
	}

	fmt.Printf("submitting %s (deadline %.0fs, loss %.2f) with fault injection: rate %.2f, preempt-at %.0fs, seed %d\n",
		w.Name, deadline, lossTarget, fi.Rate, fi.PreemptAt, fi.Seed)
	// The correlation ID is minted here, at the CLI edge, and threads
	// through every flight-recorder event the job produces.
	trace := fmt.Sprintf("cli-%d", fi.Seed)
	job, err := ctl.SubmitTraced(w, plan.Goal{TimeSec: deadline, LossTarget: lossTarget}, trace)
	if job == nil {
		return err
	}
	fmt.Printf("job %s: %s\n", job.ID, job.Status)
	fmt.Printf("  plan:        %s\n", job.Plan)
	hist := make([]string, len(job.History))
	for i, s := range job.History {
		hist[i] = string(s)
	}
	fmt.Printf("  lifecycle:   %s\n", strings.Join(hist, " -> "))
	fmt.Printf("  time:        %.0fs of %.0fs budget (%.0f%% used)\n",
		job.TrainingTime, deadline, 100*job.TrainingTime/deadline)
	fmt.Printf("  cost:        $%.3f (plan predicted $%.3f)\n", job.Cost, job.Plan.Cost)
	fmt.Printf("  recoveries:  %d (%d iterations of lost work redone)\n", job.Recoveries, job.LostIterations)
	if fi.Spot {
		fmt.Printf("  elastic:     %d mid-run scales at price change-points\n", job.ElasticScales)
	}
	if job.Err != "" {
		fmt.Printf("  error:       %s\n", job.Err)
	}
	if fi.Timeline {
		fmt.Println()
		tl := journal.BuildTimeline(job.ID, master.Journal().JobEvents(job.ID))
		if err := tl.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func loadWorkload(name, file string) (*model.Workload, error) {
	if file == "" {
		return model.WorkloadByName(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return model.ReadWorkload(f)
}

func run(workloadName, workloadFile string, deadline, lossTarget float64, baseName, predictorName,
	provisionerName string, parallel int, planTimeout time.Duration, validate, list bool) error {
	catalog := cloud.DefaultCatalog()
	if list {
		fmt.Println("workloads:")
		for _, w := range model.Workloads() {
			fmt.Printf("  %-12s %s, batch %d, %d iterations\n", w.Name, w.Sync, w.Batch, w.Iterations)
		}
		fmt.Println("instance types:")
		for _, t := range catalog.Types() {
			fmt.Printf("  %s\n", t)
		}
		return nil
	}

	w, err := loadWorkload(workloadName, workloadFile)
	if err != nil {
		return err
	}
	base, err := catalog.Lookup(baseName)
	if err != nil {
		return err
	}

	fmt.Printf("profiling %s for %d iterations on one %s worker...\n", w.Name, profile.DefaultIterations, base.Name)
	rep, err := profile.Run(w, base, 0)
	if err != nil {
		return err
	}
	p := rep.Profile
	fmt.Printf("  witer=%.2f GFLOPs  gparam=%.2f MB  cprof=%.3f GFLOPS  bprof=%.2f MB/s  (%.1fs profiling)\n",
		p.WiterGFLOPs, p.GparamMB, p.CprofGFLOPS, p.BprofMBps, rep.Duration)

	var pred perf.Predictor
	switch predictorName {
	case "cynthia":
		pred = perf.Cynthia{}
	case "paleo":
		pred = baseline.Paleo{}
	case "optimus":
		opt, err := baseline.FitFromSimulator(w, base)
		if err != nil {
			return err
		}
		pred = opt
	default:
		return fmt.Errorf("unknown predictor %q", predictorName)
	}

	var prov plan.Provisioner
	provName := "Algorithm 1"
	switch provisionerName {
	case "cynthia":
		prov = &plan.Engine{Parallelism: parallel}
	case "optimus-mg":
		prov = baseline.MarginalGain{}
		provName = baseline.MarginalGain{}.Name()
	default:
		return fmt.Errorf("unknown provisioner %q", provisionerName)
	}

	ctx := context.Background()
	if planTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, planTimeout)
		defer cancel()
	}
	goal := plan.Goal{TimeSec: deadline, LossTarget: lossTarget}
	pl, err := prov.Provision(ctx, plan.Request{Profile: p, Goal: goal, Predictor: pred, Catalog: catalog})
	if err != nil {
		return err
	}
	fmt.Printf("plan [%s / %s]: %s\n", provName, pred.Name(), pl)

	if validate {
		fmt.Println("validating in the simulator...")
		res, err := ddnnsim.Run(w, cloud.Homogeneous(pl.Type, pl.Workers, pl.PS),
			ddnnsim.Options{Iterations: pl.Iterations, LossEvery: pl.Iterations})
		if err != nil {
			return err
		}
		status := "met"
		if res.TrainingTime > goal.TimeSec {
			status = "MISSED"
		}
		fmt.Printf("  actual: %.0fs (goal %.0fs, %s), final loss %.3f, cost $%.3f\n",
			res.TrainingTime, goal.TimeSec, status, res.FinalLoss,
			plan.Cost(pl.Type, pl.Workers, pl.PS, res.TrainingTime))
	}
	return nil
}
