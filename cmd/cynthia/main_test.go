package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("", "", 0, 0, "", "", "cynthia", 0, 0, false, true); err != nil {
		t.Fatalf("list mode failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"unknown workload", func() error {
			return run("NoSuchNet", "", 3600, 0.8, "m4.xlarge", "cynthia", "cynthia", 0, 0, false, false)
		}},
		{"unknown baseline", func() error {
			return run("mnist DNN", "", 3600, 0.8, "z9.huge", "cynthia", "cynthia", 0, 0, false, false)
		}},
		{"unknown predictor", func() error {
			return run("mnist DNN", "", 3600, 0.8, "m4.xlarge", "oracle", "cynthia", 0, 0, false, false)
		}},
		{"unknown provisioner", func() error {
			return run("mnist DNN", "", 3600, 0.8, "m4.xlarge", "cynthia", "round-robin", 0, 0, false, false)
		}},
		{"missing workload file", func() error {
			return run("", "/nonexistent/w.json", 3600, 0.8, "m4.xlarge", "cynthia", "cynthia", 0, 0, false, false)
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunPlansAndValidates(t *testing.T) {
	if err := run("mnist DNN", "", 1800, 0.2, "m4.xlarge", "cynthia", "cynthia", 0, 0, true, false); err != nil {
		t.Fatalf("plan+validate failed: %v", err)
	}
}

func TestRunPaleoPredictor(t *testing.T) {
	if err := run("mnist DNN", "", 1800, 0.2, "m4.xlarge", "paleo", "cynthia", 0, 0, false, false); err != nil {
		t.Fatalf("paleo predictor failed: %v", err)
	}
}

func TestRunMarginalGainProvisioner(t *testing.T) {
	if err := run("mnist DNN", "", 1800, 0.2, "m4.xlarge", "cynthia", "optimus-mg", 0, 0, false, false); err != nil {
		t.Fatalf("marginal-gain provisioner failed: %v", err)
	}
}

func TestRunSerialScan(t *testing.T) {
	if err := run("mnist DNN", "", 1800, 0.2, "m4.xlarge", "cynthia", "cynthia", 1, 0, false, false); err != nil {
		t.Fatalf("serial scan failed: %v", err)
	}
}

func TestRunControlledTimeline(t *testing.T) {
	fi := faultInjection{PreemptAt: 100, Seed: 7, Timeline: true}
	if err := runControlled("mnist DNN", "", 1800, 0.2, fi); err != nil {
		t.Fatalf("controlled run with -timeline failed: %v", err)
	}
}

func TestRunCustomWorkloadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	payload := `{"name":"custom","witer_gflops":5,"gparam_mb":2,"batch":64,` +
		`"iterations":1000,"sync":"BSP","ps_cpu_per_mb":0.02,"loss_beta0":100,"loss_beta1":0.1}`
	if err := os.WriteFile(path, []byte(payload), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 3600, 0.3, "m4.xlarge", "cynthia", "cynthia", 0, 0, false, false); err != nil {
		t.Fatalf("custom workload failed: %v", err)
	}
}
