// Command cynthiactl is the kubectl-style client for cmd/master.
//
// Usage:
//
//	cynthiactl [-server 127.0.0.1:8080] get nodes
//	cynthiactl get pods [jobID]
//	cynthiactl get jobs
//	cynthiactl get job <id>
//	cynthiactl submit -workload "cifar10 DNN" -deadline 5400 -loss 0.8 [-async]
//	cynthiactl plan -workload "cifar10 DNN" -deadline 5400 -loss 0.8
//	cynthiactl timeline <jobID> [-format text|json|chrome]
//	cynthiactl events [-after N] [-job id] [-follow] [-interval 2s]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"
)

func main() {
	server := flag.String("server", "127.0.0.1:8080", "master address")
	flag.Parse()
	args := flag.Args()
	if err := run(*server, args); err != nil {
		fmt.Fprintln(os.Stderr, "cynthiactl:", err)
		os.Exit(1)
	}
}

func run(server string, args []string) error {
	base := "http://" + server
	if len(args) == 0 {
		return fmt.Errorf("usage: cynthiactl [get nodes|get pods|get jobs|get job <id>|submit ...]")
	}
	switch args[0] {
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("get what? nodes, pods, jobs, or job <id>")
		}
		switch args[1] {
		case "nodes":
			return pretty(base + "/api/nodes")
		case "pods":
			u := base + "/api/pods"
			if len(args) > 2 {
				u += "?job=" + url.QueryEscape(args[2])
			}
			return pretty(u)
		case "jobs":
			return pretty(base + "/api/jobs")
		case "job":
			if len(args) < 3 {
				return fmt.Errorf("get job <id>")
			}
			return pretty(base + "/api/jobs/" + url.PathEscape(args[2]))
		default:
			return fmt.Errorf("unknown resource %q", args[1])
		}
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ContinueOnError)
		workload := fs.String("workload", "cifar10 DNN", "workload name")
		deadline := fs.Float64("deadline", 5400, "deadline in seconds")
		lossTarget := fs.Float64("loss", 0.8, "target loss")
		async := fs.Bool("async", false, "return the job ID immediately instead of waiting for the run")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		u := base + "/api/jobs"
		if *async {
			u += "?wait=false"
		}
		resp, err := postGoal(u, *workload, *deadline, *lossTarget)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return dump(resp)
	case "plan":
		// Quote a submission without provisioning: the master answers
		// from the plan service and reports how in the X-Cache header.
		fs := flag.NewFlagSet("plan", flag.ContinueOnError)
		workload := fs.String("workload", "cifar10 DNN", "workload name")
		deadline := fs.Float64("deadline", 5400, "deadline in seconds")
		lossTarget := fs.Float64("loss", 0.8, "target loss")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		resp, err := postGoal(base+"/api/plan", *workload, *deadline, *lossTarget)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if c := resp.Header.Get("X-Cache"); c != "" {
			fmt.Printf("cache: %s\n", c)
		}
		return dump(resp)
	case "timeline":
		fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
		format := fs.String("format", "text", "timeline rendering: text, json, or chrome")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		rest := fs.Args()
		if len(rest) == 0 {
			return fmt.Errorf("timeline <jobID> [-format text|json|chrome]")
		}
		jobID := rest[0]
		if err := fs.Parse(rest[1:]); err != nil { // flags may follow the job ID
			return err
		}
		u := base + "/debug/jobs/" + url.PathEscape(jobID) + "/timeline?format=" + url.QueryEscape(*format)
		if *format == "text" {
			return raw(u)
		}
		return pretty(u)
	case "events":
		fs := flag.NewFlagSet("events", flag.ContinueOnError)
		after := fs.Uint64("after", 0, "only events with a global sequence number above this")
		jobF := fs.String("job", "", "only events correlated with this job ID")
		follow := fs.Bool("follow", false, "keep polling for new events")
		interval := fs.Duration("interval", 2*time.Second, "poll interval with -follow")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		return followEvents(base, *after, *jobF, *follow, *interval)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// postGoal POSTs the shared submit/quote payload.
func postGoal(u, workload string, deadline, lossTarget float64) (*http.Response, error) {
	body, err := json.Marshal(map[string]any{
		"workload":     workload,
		"deadline_sec": deadline,
		"loss_target":  lossTarget,
	})
	if err != nil {
		return nil, err
	}
	return http.Post(u, "application/json", bytes.NewReader(body))
}

// followEvents streams the flight recorder's canonical JSONL to stdout.
// With follow it polls from the last printed sequence number, so each
// event appears exactly once.
func followEvents(base string, after uint64, job string, follow bool, interval time.Duration) error {
	for {
		u := fmt.Sprintf("%s/debug/journal?after=%d", base, after)
		if job != "" {
			u += "&job=" + url.QueryEscape(job)
		}
		resp, err := http.Get(u)
		if err != nil {
			return err
		}
		if resp.StatusCode >= 400 {
			resp.Body.Close()
			return fmt.Errorf("server returned %s", resp.Status)
		}
		// The master's journal ring is bounded; the header reports the
		// oldest sequence it still holds when our cursor fell behind it.
		if tr := resp.Header.Get("X-Journal-Truncated"); tr != "" {
			fmt.Fprintf(os.Stderr, "cynthiactl: warning: journal ring evicted events past cursor %d; oldest retained seq is %s\n", after, tr)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			fmt.Printf("%s\n", line)
			var ev struct {
				Seq uint64 `json:"seq"`
			}
			if json.Unmarshal(line, &ev) == nil && ev.Seq > after {
				after = ev.Seq
			}
		}
		err = sc.Err()
		resp.Body.Close()
		if err != nil {
			return err
		}
		if !follow {
			return nil
		}
		time.Sleep(interval)
	}
}

// raw prints a response body verbatim (for text renderings).
func raw(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("%s", body)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}

func pretty(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

func dump(resp *http.Response) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if json.Indent(&buf, raw, "", "  ") == nil {
		raw = buf.Bytes()
	}
	fmt.Printf("%s\n", raw)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
