// Command cynthiactl is the kubectl-style client for cmd/master.
//
// Usage:
//
//	cynthiactl [-server 127.0.0.1:8080] get nodes
//	cynthiactl get pods [jobID]
//	cynthiactl get jobs
//	cynthiactl get job <id>
//	cynthiactl submit -workload "cifar10 DNN" -deadline 5400 -loss 0.8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
)

func main() {
	server := flag.String("server", "127.0.0.1:8080", "master address")
	flag.Parse()
	args := flag.Args()
	if err := run(*server, args); err != nil {
		fmt.Fprintln(os.Stderr, "cynthiactl:", err)
		os.Exit(1)
	}
}

func run(server string, args []string) error {
	base := "http://" + server
	if len(args) == 0 {
		return fmt.Errorf("usage: cynthiactl [get nodes|get pods|get jobs|get job <id>|submit ...]")
	}
	switch args[0] {
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("get what? nodes, pods, jobs, or job <id>")
		}
		switch args[1] {
		case "nodes":
			return pretty(base + "/api/nodes")
		case "pods":
			u := base + "/api/pods"
			if len(args) > 2 {
				u += "?job=" + url.QueryEscape(args[2])
			}
			return pretty(u)
		case "jobs":
			return pretty(base + "/api/jobs")
		case "job":
			if len(args) < 3 {
				return fmt.Errorf("get job <id>")
			}
			return pretty(base + "/api/jobs/" + url.PathEscape(args[2]))
		default:
			return fmt.Errorf("unknown resource %q", args[1])
		}
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ContinueOnError)
		workload := fs.String("workload", "cifar10 DNN", "workload name")
		deadline := fs.Float64("deadline", 5400, "deadline in seconds")
		lossTarget := fs.Float64("loss", 0.8, "target loss")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		body, err := json.Marshal(map[string]any{
			"workload":     *workload,
			"deadline_sec": *deadline,
			"loss_target":  *lossTarget,
		})
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/api/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return dump(resp)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func pretty(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

func dump(resp *http.Response) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if json.Indent(&buf, raw, "", "  ") == nil {
		raw = buf.Bytes()
	}
	fmt.Printf("%s\n", raw)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
