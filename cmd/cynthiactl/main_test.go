package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"cynthia/internal/cloud"
	"cynthia/internal/cluster"
)

func startMaster(t *testing.T) string {
	t.Helper()
	master, err := cluster.NewMaster()
	if err != nil {
		t.Fatal(err)
	}
	provider := cloud.NewProvider(cloud.DefaultCatalog(), nil)
	provider.SetJournal(master.Journal())
	controller := cluster.NewController(master, provider, nil, "")
	srv := httptest.NewServer(cluster.NewAPI(master, controller).Handler())
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestGetResources(t *testing.T) {
	addr := startMaster(t)
	for _, args := range [][]string{
		{"get", "nodes"},
		{"get", "pods"},
		{"get", "jobs"},
	} {
		if err := run(addr, args); err != nil {
			t.Errorf("%v failed: %v", args, err)
		}
	}
}

func TestSubmitAndGetJob(t *testing.T) {
	addr := startMaster(t)
	if err := run(addr, []string{"submit", "-workload", "mnist DNN", "-deadline", "1800", "-loss", "0.2"}); err != nil {
		t.Fatalf("submit failed: %v", err)
	}
	if err := run(addr, []string{"get", "job", "job-1"}); err != nil {
		t.Errorf("get job failed: %v", err)
	}
	if err := run(addr, []string{"get", "pods", "job-1"}); err != nil {
		t.Errorf("get pods with filter failed: %v", err)
	}
}

func TestPlanQuote(t *testing.T) {
	addr := startMaster(t)
	// Quote twice (second answer comes from the plan cache), then check
	// no job was registered by either.
	for i := 0; i < 2; i++ {
		if err := run(addr, []string{"plan", "-workload", "mnist DNN", "-deadline", "1800", "-loss", "0.2"}); err != nil {
			t.Fatalf("plan failed: %v", err)
		}
	}
	if err := run(addr, []string{"get", "job", "job-1"}); err == nil {
		t.Error("plan quote registered a job")
	}
	// An unreachable goal surfaces the server's 422 as a CLI error.
	if err := run(addr, []string{"plan", "-workload", "VGG-19", "-deadline", "3600", "-loss", "0.1"}); err == nil {
		t.Error("infeasible quote did not error")
	}
}

func TestAsyncSubmitReturnsAccepted(t *testing.T) {
	addr := startMaster(t)
	if err := run(addr, []string{"submit", "-async", "-workload", "mnist DNN", "-deadline", "1800", "-loss", "0.2"}); err != nil {
		t.Fatalf("async submit failed: %v", err)
	}
	if err := run(addr, []string{"get", "job", "job-1"}); err != nil {
		t.Errorf("get job after async submit failed: %v", err)
	}
}

func TestTimelineAndEvents(t *testing.T) {
	addr := startMaster(t)
	if err := run(addr, []string{"submit", "-workload", "mnist DNN", "-deadline", "1800", "-loss", "0.2"}); err != nil {
		t.Fatalf("submit failed: %v", err)
	}
	for _, args := range [][]string{
		{"timeline", "job-1"},
		{"timeline", "job-1", "-format", "json"},
		{"timeline", "job-1", "-format", "chrome"},
		{"events"},
		{"events", "-job", "job-1"},
		{"events", "-after", "5"},
	} {
		if err := run(addr, args); err != nil {
			t.Errorf("%v failed: %v", args, err)
		}
	}
	if err := run(addr, []string{"timeline", "ghost"}); err == nil {
		t.Error("timeline for missing job did not error")
	}
	if err := run(addr, []string{"timeline"}); err == nil {
		t.Error("timeline without a job accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	addr := startMaster(t)
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"get"},
		{"get", "quota"},
		{"get", "job"},
	}
	for _, args := range cases {
		if err := run(addr, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Server-side error surfaces as a CLI error.
	if err := run(addr, []string{"get", "job", "ghost"}); err == nil {
		t.Error("missing job did not error")
	}
}
