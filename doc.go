// Package cynthia is a full reproduction of "Cynthia: Cost-Efficient
// Cloud Resource Provisioning for Predictable Distributed Deep Neural
// Network Training" (ICPP 2019).
//
// The library lives under internal/ and cmd/:
//
//   - internal/perf, internal/loss, internal/plan — the paper's
//     contribution: the analytical performance model (Sec. 3), the Eq. (1)
//     loss model, and the Algorithm 1 provisioner (Sec. 4);
//   - internal/flow, internal/ddnnsim — a flow-level discrete-event
//     simulator of PS-architecture training, standing in for the paper's
//     EC2 testbed;
//   - internal/cloud, internal/cluster — the simulated IaaS provider and
//     the Kubernetes-like control plane of the prototype;
//   - internal/tensor, internal/nn, internal/data, internal/ps — a real
//     parameter-server training framework over TCP;
//   - internal/baseline — the Optimus and Paleo comparators;
//   - internal/experiments — regenerates every table and figure of the
//     paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each experiment.
package cynthia
