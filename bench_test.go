package cynthia_test

// One benchmark per paper table and figure: each b.N iteration regenerates
// the experiment (at a reduced iteration scale so a full -bench=. sweep
// stays tractable), plus the ablation benchmarks DESIGN.md calls out.
// Accuracy-style ablations report their prediction error through
// b.ReportMetric as "%err".

import (
	"testing"

	"cynthia/internal/baseline"
	"cynthia/internal/cloud"
	"cynthia/internal/ddnnsim"
	"cynthia/internal/experiments"
	"cynthia/internal/model"
	"cynthia/internal/obs"
	"cynthia/internal/perf"
	"cynthia/internal/plan"
)

// benchCfg keeps per-iteration work bounded.
var benchCfg = experiments.Config{Scale: 0.02, Seed: 1}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkTable1Workloads(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkFigure1TrainingTime(b *testing.B)        { benchExperiment(b, "figure1") }
func BenchmarkTable2CPUUtilization(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkFigure2PSNetworkThroughput(b *testing.B) { benchExperiment(b, "figure2") }
func BenchmarkFigure3Breakdown(b *testing.B)           { benchExperiment(b, "figure3") }
func BenchmarkFigure4LossCurves(b *testing.B)          { benchExperiment(b, "figure4") }
func BenchmarkTable4Profiling(b *testing.B)            { benchExperiment(b, "table4") }
func BenchmarkFigure6PredictionAccuracy(b *testing.B)  { benchExperiment(b, "figure6") }
func BenchmarkFigure7VGGThroughput(b *testing.B)       { benchExperiment(b, "figure7") }
func BenchmarkFigure8CrossInstance(b *testing.B)       { benchExperiment(b, "figure8") }
func BenchmarkFigure9Heterogeneous(b *testing.B)       { benchExperiment(b, "figure9") }
func BenchmarkFigure10MultiPS(b *testing.B)            { benchExperiment(b, "figure10") }
func BenchmarkFigure11GoalsBSP(b *testing.B)           { benchExperiment(b, "figure11") }
func BenchmarkFigure12LossSweep(b *testing.B)          { benchExperiment(b, "figure12") }
func BenchmarkFigure13GoalsASP(b *testing.B)           { benchExperiment(b, "figure13") }
func BenchmarkSection53AlgorithmOverhead(b *testing.B) { benchExperiment(b, "section5.3") }
func BenchmarkExtensionGPU(b *testing.B)               { benchExperiment(b, "extension-gpu") }
func BenchmarkFigure4RealTraining(b *testing.B)        { benchExperiment(b, "figure4-real") }

// BenchmarkSection53ProvisionOnly times a single Algorithm 1 run (the
// paper's 13-39 ms figure) without the surrounding experiment harness.
func BenchmarkSection53ProvisionOnly(b *testing.B) {
	m4, err := cloud.DefaultCatalog().Lookup(cloud.M4XLarge)
	if err != nil {
		b.Fatal(err)
	}
	w, err := model.WorkloadByName("cifar10 DNN")
	if err != nil {
		b.Fatal(err)
	}
	p := perf.SyntheticProfile(w, m4)
	goal := plan.Goal{TimeSec: 5400, LossTarget: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Provision(plan.Request{Profile: p, Goal: goal}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationOverlap compares the overlapped BSP iteration model
// (max, Cynthia) against the unoverlapped sum (Paleo-style) on the
// balanced cifar10 configuration, reporting both prediction errors.
func BenchmarkAblationOverlap(b *testing.B) {
	m4, _ := cloud.DefaultCatalog().Lookup(cloud.M4XLarge)
	w, _ := model.WorkloadByName("cifar10 DNN")
	p := perf.SyntheticProfile(w, m4)
	cluster := cloud.Homogeneous(m4, 12, 1)
	const iters = 120
	obs, err := ddnnsim.Run(w, cluster, ddnnsim.Options{Iterations: iters, LossEvery: iters})
	if err != nil {
		b.Fatal(err)
	}
	var maxErr, sumErr float64
	for i := 0; i < b.N; i++ {
		overlapped, err := perf.Cynthia{}.TrainingTime(p, cluster, iters)
		if err != nil {
			b.Fatal(err)
		}
		summed, err := baseline.Paleo{}.TrainingTime(p, cluster, iters)
		if err != nil {
			b.Fatal(err)
		}
		maxErr = perf.PredictionError(overlapped, obs.TrainingTime)
		sumErr = perf.PredictionError(summed, obs.TrainingTime)
	}
	b.ReportMetric(maxErr*100, "%err-overlap")
	b.ReportMetric(sumErr*100, "%err-sum")
}

// BenchmarkAblationBottleneck compares Cynthia with its PS bottleneck
// model against a variant that ignores the PS (raw NIC bandwidth, full
// worker utilization) on the PS-bound mnist configuration.
func BenchmarkAblationBottleneck(b *testing.B) {
	m4, _ := cloud.DefaultCatalog().Lookup(cloud.M4XLarge)
	w, _ := model.WorkloadByName("mnist DNN")
	p := perf.SyntheticProfile(w, m4)
	cluster := cloud.Homogeneous(m4, 8, 1)
	const iters = 400
	obs, err := ddnnsim.Run(w, cluster, ddnnsim.Options{Iterations: iters, LossEvery: iters})
	if err != nil {
		b.Fatal(err)
	}
	// The bottleneck-blind variant is Cynthia with the PS CPU signal
	// erased from the profile.
	blind := *p
	blind.CprofGFLOPS = 0
	var withErr, withoutErr float64
	for i := 0; i < b.N; i++ {
		on, err := perf.Cynthia{}.TrainingTime(p, cluster, iters)
		if err != nil {
			b.Fatal(err)
		}
		off, err := perf.Cynthia{}.TrainingTime(&blind, cluster, iters)
		if err != nil {
			b.Fatal(err)
		}
		withErr = perf.PredictionError(on, obs.TrainingTime)
		withoutErr = perf.PredictionError(off, obs.TrainingTime)
	}
	b.ReportMetric(withErr*100, "%err-bottleneck")
	b.ReportMetric(withoutErr*100, "%err-blind")
}

// BenchmarkAblationBounds compares Algorithm 1 with Theorem 4.1's bounded
// search against a full scan over every worker count up to the quota.
func BenchmarkAblationBounds(b *testing.B) {
	m4, _ := cloud.DefaultCatalog().Lookup(cloud.M4XLarge)
	w, _ := model.WorkloadByName("cifar10 DNN")
	p := perf.SyntheticProfile(w, m4)
	goal := plan.Goal{TimeSec: 5400, LossTarget: 0.8}
	b.Run("bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Provision(plan.Request{Profile: p, Goal: goal}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		// Exhaustive scan: evaluate every (type, n, nps<=4) candidate.
		catalog := cloud.DefaultCatalog()
		for i := 0; i < b.N; i++ {
			best := plan.Plan{}
			have := false
			for _, t := range catalog.Types() {
				for nps := 1; nps <= 4; nps++ {
					for n := nps; n <= plan.DefaultMaxWorkers; n++ {
						iters, err := w.IterationsToLoss(goal.LossTarget, n)
						if err != nil {
							continue
						}
						spec := cloud.Homogeneous(t, n, nps)
						total, err := perf.Cynthia{}.TrainingTime(p, spec, iters)
						if err != nil || total > goal.TimeSec {
							continue
						}
						cost := t.PricePerHour * float64(n+nps) * total / 3600
						if !have || cost < best.Cost {
							best = plan.Plan{Type: t, Workers: n, PS: nps, Cost: cost, Feasible: true}
							have = true
						}
					}
				}
			}
			if !have {
				b.Fatal("full scan found nothing")
			}
		}
	})
}

// BenchmarkAblationMinPS compares the minimum-PS rule (Eq. 18/22) against
// forcing extra PS nodes, reporting the plan costs.
func BenchmarkAblationMinPS(b *testing.B) {
	m4, _ := cloud.DefaultCatalog().Lookup(cloud.M4XLarge)
	w, _ := model.WorkloadByName("cifar10 DNN")
	p := perf.SyntheticProfile(w, m4)
	goal := plan.Goal{TimeSec: 5400, LossTarget: 0.8}
	var minCost, forcedCost float64
	for i := 0; i < b.N; i++ {
		pl, err := plan.Provision(plan.Request{Profile: p, Goal: goal})
		if err != nil {
			b.Fatal(err)
		}
		minCost = pl.Cost
		// Force 4 PS nodes: evaluate the same worker count with nps=4.
		iters, err := w.IterationsToLoss(goal.LossTarget, pl.Workers)
		if err != nil {
			b.Fatal(err)
		}
		total, err := perf.Cynthia{}.TrainingTime(p, cloud.Homogeneous(pl.Type, pl.Workers, 4), iters)
		if err != nil {
			b.Fatal(err)
		}
		forcedCost = pl.Type.PricePerHour * float64(pl.Workers+4) * total / 3600
	}
	b.ReportMetric(minCost, "$min-ps")
	b.ReportMetric(forcedCost, "$forced-4ps")
}

// --- Observability hot paths (internal/obs) ---

// BenchmarkCounterInc measures the metrics hot path that every PS push
// crosses; the acceptance bar is <=50 ns/op.
func BenchmarkCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_counter_total", "benchmark counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkSpanStartEnd measures one traced span on the per-goroutine
// span context, including the wall-clock reads at both edges.
func BenchmarkSpanStartEnd(b *testing.B) {
	ctx := obs.NewTracer().Context(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Start("bench", "span").End()
	}
}
